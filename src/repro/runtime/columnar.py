"""Array-native batch representation for the inference hot path.

LearnedWMP's observation — production workloads collapse onto a small
template distribution — means a labeled batch is tiny *per template*:
a 1,000-query batch usually carries a few dozen distinct templates.
The columnar form exploits that. A :class:`ColumnarBatch` keeps one
contiguous array per label column at **template** granularity (the
predicted value per distinct template, plus the batch's
template-inverse index), so the pipeline predicts once per template,
the router partitions by array instead of grouping message objects,
and per-query :class:`~repro.core.labeled_query.LabeledQuery` copies
are materialized exactly once, at the :meth:`ColumnarBatch.to_messages`
boundary — or per-row on demand for the rare spill paths.

The batch flows pipeline → Qworker → router → backend without
rebuilding Python objects between stages; ``to_messages()`` caches its
result, so sinks, windows and the public API share one materialization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # avoid an import cycle with repro.core
    from repro.core.labeled_query import LabeledQuery


class LabelColumn:
    """One classifier's predictions, stored at template granularity.

    ``template_values[inverse[i]]`` is query *i*'s label — one fancy
    index scatters the whole column. Columns from different embedder
    groups carry different inverses (custom tokenizations dedup
    differently), which is why the inverse lives on the column, not
    the batch.
    """

    __slots__ = ("name", "template_values", "inverse")

    def __init__(
        self, name: str, template_values: np.ndarray, inverse: np.ndarray
    ) -> None:
        self.name = name
        self.template_values = template_values  # object array, one per template
        self.inverse = inverse  # intp array, one per query

    def values(self) -> np.ndarray:
        """Per-query label values (object array, len == batch size)."""
        return self.template_values[self.inverse]

    def value_at(self, i: int):
        return self.template_values[self.inverse[i]]


class ColumnarBatch:
    """A labeled batch as arrays; messages only at the boundary.

    Holds the original (pre-labeling) messages, their query texts, and
    the accumulated :class:`LabelColumn`\\ s. Supports ``len`` and
    truthiness like the message list it replaces.
    """

    __slots__ = (
        "messages",
        "queries",
        "columns",
        "fingerprint_ids",
        "_materialized",
    )

    def __init__(
        self,
        messages: "Sequence[LabeledQuery]",
        queries: list[str] | None = None,
    ) -> None:
        self.messages = list(messages)
        self.queries = (
            queries if queries is not None else [m.query for m in self.messages]
        )
        self.columns: list[LabelColumn] = []
        # per-query interned template-fingerprint ids (int64, negative
        # = batch-local overflow id), attached by the pipeline so
        # dispatch can hand templates to prepared-execution backends
        self.fingerprint_ids: np.ndarray | None = None
        self._materialized: "list[LabeledQuery] | None" = None

    def __len__(self) -> int:
        return len(self.messages)

    def add_column(
        self, name: str, template_values: np.ndarray, inverse: np.ndarray
    ) -> None:
        if self._materialized is not None:
            raise RuntimeError(
                "cannot add label columns after to_messages() materialized"
            )
        self.columns.append(LabelColumn(name, template_values, inverse))

    def column(self, name: str) -> LabelColumn | None:
        for col in self.columns:
            if col.name == name:
                return col
        return None

    def select(self, indices: np.ndarray) -> "ColumnarSlice":
        """A zero-copy view of a subset of rows (router partitions)."""
        return ColumnarSlice(self, np.asarray(indices, dtype=np.intp))

    def message_at(self, i: int) -> "LabeledQuery":
        """One fully-labeled message, materialized on demand."""
        if self._materialized is not None:
            return self._materialized[i]
        if not self.columns:
            return self.messages[i]
        return self.messages[i].with_labels(
            **{col.name: col.value_at(i) for col in self.columns}
        )

    def to_messages(self) -> "list[LabeledQuery]":
        """The labeled batch as per-query messages (cached).

        One ``with_labels`` per message — the single object-
        materialization point of the whole hot path. Every label column
        is scattered with one fancy index before the per-message loop.
        """
        if self._materialized is None:
            if not self.columns:
                self._materialized = list(self.messages)
            else:
                scattered = [(col.name, col.values()) for col in self.columns]
                self._materialized = [
                    message.with_labels(
                        **{name: values[i] for name, values in scattered}
                    )
                    for i, message in enumerate(self.messages)
                ]
        return self._materialized


class ColumnarSlice:
    """A row subset of a :class:`ColumnarBatch` for dispatch groups.

    Quacks enough like ``list[LabeledQuery]`` for the router's offer
    path — ``len``, slicing, iteration — but keeps the columnar form:
    ``queries()`` reads straight from the batch's text array, and
    per-message materialization happens only when a spill path really
    iterates the slice (queueing parked work, fallback hand-off).
    """

    __slots__ = ("batch", "indices")

    def __init__(self, batch: ColumnarBatch, indices: np.ndarray) -> None:
        self.batch = batch
        self.indices = indices

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return ColumnarSlice(self.batch, self.indices[item])
        return self.batch.message_at(int(self.indices[item]))

    def __iter__(self) -> "Iterator[LabeledQuery]":
        batch = self.batch
        for i in self.indices:
            yield batch.message_at(int(i))

    def queries(self) -> list[str]:
        texts = self.batch.queries
        return [texts[i] for i in self.indices]

    def label_at(self, i: int, name: str, default=None):
        """Row ``i``'s value for one label — columnarly, no message built.

        Reads the predicted value straight from the batch's label
        column (template array + inverse), falling back to the
        original message's pre-labeling labels; unlike indexing the
        slice, no ``with_labels`` copy is materialized. The router's
        failover/breaker paths use this to learn a doomed group's
        route label without breaching the ``to_messages()`` boundary.
        """
        row = int(self.indices[i])
        col = self.batch.column(name)
        if col is not None:
            return col.value_at(row)
        return self.batch.messages[row].label(name, default)

    def fingerprint_ids(self) -> np.ndarray | None:
        """This slice's interned template ids (None when the batch has
        none, e.g. batches built outside the pipeline)."""
        ids = self.batch.fingerprint_ids
        return None if ids is None else ids[self.indices]

"""Hot-path observability for the inference runtime.

Qworkers sit on the query critical path (Figure 1), so the runtime
tracks exactly the quantities that determine whether the shared
pipeline is paying off: per-stage wall time, embedder ``transform``
invocations, cache hit rate, and the batch dedup ratio.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

STAGES = ("fingerprint", "dedup", "embed", "predict", "scatter")


@dataclass
class RuntimeMetrics:
    """Counters and timings accumulated across pipeline batches.

    Not synchronized: updates assume the single-threaded worker loop.
    The async-Qworkers roadmap item owns making aggregation
    concurrency-safe (the embedding cache underneath is already
    locked).
    """

    batches: int = 0
    queries: int = 0
    unique_templates: int = 0  # distinct fingerprints per batch, summed
    embedded_templates: int = 0  # templates actually sent to transform
    transform_calls: int = 0  # embedder.transform invocations
    cache_hits: int = 0
    cache_misses: int = 0
    stage_seconds: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in STAGES}
    )

    @contextmanager
    def stage(self, name: str):
        """Time one pipeline stage; accumulates into ``stage_seconds``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + time.perf_counter() - start
            )

    @property
    def dedup_ratio(self) -> float:
        """Fraction of queries that were duplicates of an earlier
        template in their batch (0.0 = all unique)."""
        if not self.queries:
            return 0.0
        return 1.0 - self.unique_templates / self.queries

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of unique-template lookups served from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A plain-dict view for ``QuercService.stats()`` / dashboards."""
        return {
            "batches": self.batches,
            "queries": self.queries,
            "unique_templates": self.unique_templates,
            "embedded_templates": self.embedded_templates,
            "transform_calls": self.transform_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "dedup_ratio": self.dedup_ratio,
            "stage_seconds": dict(self.stage_seconds),
        }

    def reset(self) -> None:
        """Zero every counter and timing (e.g. between bench phases)."""
        self.batches = 0
        self.queries = 0
        self.unique_templates = 0
        self.embedded_templates = 0
        self.transform_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.stage_seconds = {name: 0.0 for name in STAGES}

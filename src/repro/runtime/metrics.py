"""Hot-path observability for the inference runtime.

Qworkers sit on the query critical path (Figure 1), so the runtime
tracks exactly the quantities that determine whether the shared
pipeline is paying off: per-stage wall time, embedder ``transform``
invocations, cache hit rate, and the batch dedup ratio.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

STAGES = ("fingerprint", "dedup", "embed", "predict", "scatter")
# the router's dispatch path reports into the same object
ROUTING_STAGES = ("route", "execute")
# the serving front end's per-frame path: decode bytes → frames,
# admit + bridge into the stage pool, encode + write replies
SERVER_STAGES = ("server_decode", "server_submit", "server_reply")
_ALL_STAGES = STAGES + ROUTING_STAGES + SERVER_STAGES


@dataclass
class RuntimeMetrics:
    """Counters and timings accumulated across pipeline batches.

    Aggregation is thread-safe: ``add`` applies a multi-counter delta
    atomically, ``stage`` accumulates its elapsed time under the same
    lock, and ``snapshot`` returns an internally consistent view — so
    routed dispatch and async workers can share one metrics object
    without corrupting ``stats()``. Direct attribute writes remain
    possible for single-threaded callers but bypass the lock.
    """

    batches: int = 0
    queries: int = 0
    unique_templates: int = 0  # distinct fingerprints per batch, summed
    embedded_templates: int = 0  # templates actually sent to transform
    transform_calls: int = 0  # embedder.transform invocations
    cache_hits: int = 0
    cache_misses: int = 0
    # fingerprint-table counters (the normalizer's process-wide memo /
    # intern table, as seen from this runtime's batches)
    fingerprint_memo_hits: int = 0
    fingerprint_memo_misses: int = 0
    intern_overflow: int = 0  # queries whose template had no intern slot
    # resilience-layer counters, fed by the router's dispatch path
    retries: int = 0  # execute re-attempts beyond the first
    failovers: int = 0  # groups re-resolved to a sibling backend
    deadline_expiries: int = 0  # retry budgets that ran out
    queue_evictions: int = 0  # parked rows dropped for age/retries
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    # serving-front-end counters, fed by QuercServer's sessions
    server_sessions: int = 0  # connections accepted past the edge
    server_sessions_closed: int = 0
    server_sessions_shed: int = 0  # connections refused at accept time
    server_frames_in: int = 0
    server_frames_out: int = 0
    server_frames_shed: int = 0  # submit frames refused SERVER_BUSY
    server_bytes_in: int = 0
    server_bytes_out: int = 0
    server_protocol_errors: int = 0  # malformed/oversized/bad frames
    server_queries: int = 0  # queries accepted into the stage pool
    server_queries_shed: int = 0  # queries inside shed submit frames
    stage_seconds: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in _ALL_STAGES}
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    _COUNTERS = (
        "batches",
        "queries",
        "unique_templates",
        "embedded_templates",
        "transform_calls",
        "cache_hits",
        "cache_misses",
        "fingerprint_memo_hits",
        "fingerprint_memo_misses",
        "intern_overflow",
        "retries",
        "failovers",
        "deadline_expiries",
        "queue_evictions",
        "breaker_opens",
        "breaker_half_opens",
        "breaker_closes",
        "server_sessions",
        "server_sessions_closed",
        "server_sessions_shed",
        "server_frames_in",
        "server_frames_out",
        "server_frames_shed",
        "server_bytes_in",
        "server_bytes_out",
        "server_protocol_errors",
        "server_queries",
        "server_queries_shed",
    )

    def add(self, **deltas: int) -> None:
        """Atomically apply a delta to one or more counters."""
        with self._lock:
            for name, delta in deltas.items():
                if name not in self._COUNTERS:
                    raise KeyError(f"unknown runtime counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    @contextmanager
    def stage(self, name: str):
        """Time one pipeline stage; accumulates into ``stage_seconds``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.stage_seconds[name] = (
                    self.stage_seconds.get(name, 0.0) + elapsed
                )

    def add_stage_seconds(self, name: str, seconds: float) -> None:
        """Credit externally-measured time to one stage.

        The serving tier times its frame path on an injectable clock
        (so protocol tests stay wall-clock-free) and deposits the
        elapsed seconds here instead of using :meth:`stage`'s own
        ``perf_counter``.
        """
        with self._lock:
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + seconds
            )

    @property
    def dedup_ratio(self) -> float:
        """Fraction of queries that were duplicates of an earlier
        template in their batch (0.0 = all unique)."""
        if not self.queries:
            return 0.0
        return 1.0 - self.unique_templates / self.queries

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of unique-template lookups served from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A plain-dict view for ``QuercService.stats()`` / dashboards.

        The raw counters are copied under the lock — so concurrent
        ``add``/``stage`` calls can't produce a torn view (e.g. hits
        without their misses) — but the dict is built and the derived
        ratios computed *outside* it, so a dashboard polling
        ``stats()`` never makes the hot path's writers queue behind
        formatting work (see the contention note in
        ``benchmarks/results/hot_path.txt``).
        """
        with self._lock:
            batches = self.batches
            queries = self.queries
            unique = self.unique_templates
            embedded = self.embedded_templates
            transforms = self.transform_calls
            hits = self.cache_hits
            misses = self.cache_misses
            memo_hits = self.fingerprint_memo_hits
            memo_misses = self.fingerprint_memo_misses
            overflow = self.intern_overflow
            resilience = {
                "retries": self.retries,
                "failovers": self.failovers,
                "deadline_expiries": self.deadline_expiries,
                "queue_evictions": self.queue_evictions,
                "breaker_opens": self.breaker_opens,
                "breaker_half_opens": self.breaker_half_opens,
                "breaker_closes": self.breaker_closes,
            }
            server = {
                "sessions": self.server_sessions,
                "sessions_closed": self.server_sessions_closed,
                "sessions_shed": self.server_sessions_shed,
                "frames_in": self.server_frames_in,
                "frames_out": self.server_frames_out,
                "frames_shed": self.server_frames_shed,
                "bytes_in": self.server_bytes_in,
                "bytes_out": self.server_bytes_out,
                "protocol_errors": self.server_protocol_errors,
                "queries": self.server_queries,
                "queries_shed": self.server_queries_shed,
            }
            stage_seconds = dict(self.stage_seconds)
        memo_total = memo_hits + memo_misses
        return {
            "batches": batches,
            "queries": queries,
            "unique_templates": unique,
            "embedded_templates": embedded,
            "transform_calls": transforms,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "fingerprint_memo_hits": memo_hits,
            "fingerprint_memo_misses": memo_misses,
            "fingerprint_memo_hit_rate": (
                memo_hits / memo_total if memo_total else 0.0
            ),
            "intern_overflow": overflow,
            **resilience,
            "server": server,
            "dedup_ratio": 1.0 - unique / queries if queries else 0.0,
            "stage_seconds": stage_seconds,
        }

    def reset(self) -> None:
        """Zero every counter and timing (e.g. between bench phases)."""
        with self._lock:
            for name in self._COUNTERS:
                setattr(self, name, 0)
            self.stage_seconds = {name: 0.0 for name in _ALL_STAGES}

"""Concurrent staged execution: many Qworkers on a bounded thread pool.

The paper's Figure 1 draws many Qworkers consuming per-application
query streams side by side; until this layer the reproduction ran them
strictly one batch at a time — fingerprint → embed → predict → route →
execute in one thread, so a slow embedder on one application stalled
every other tenant and the CPU idled while a backend executed.

:class:`StagedExecutor` splits each batch's life into two stages and
pipelines them across batches:

* **stage A** — label: fingerprint + dedup + embed + predict on the
  shared :class:`~repro.runtime.pipeline.InferencePipeline` (CPU
  bound);
* **stage B** — place: route + admission + execute on the
  :class:`~repro.backends.router.BatchRouter` and its backends
  (typically dominated by backend latency).

The label→dispatch hand-off carries
:class:`~repro.runtime.columnar.ColumnarBatch` records, not
per-message lists: stage A leaves its predictions as template-level
arrays, stage B partitions them by label array, and per-query
:class:`~repro.core.labeled_query.LabeledQuery` objects materialize
once, after dispatch, for the caller's result list.

Earlier revisions gave every application its own pair of OS threads
(one per stage). That shape breaks down at many-tenant scale: 100
applications meant 200 mostly-idle threads, almost all of them blocked
on an empty queue. This revision runs a **shared stage pool** instead:
``label_workers`` stage-A threads and ``dispatch_workers`` stage-B
threads serve *every* application. Each application keeps a **lane** —
now a lightweight state record (two bounded deques plus counters, no
threads) — and a lane becomes *ready* for a stage exactly when it has
work for that stage and no batch of its own already in flight there.
Ready lanes queue on one of two ready-queues; idle workers pull the
next ready lane, run one batch through their stage, and reschedule the
lane as its state allows. The thread count is O(pool size), not
O(tenants).

Two invariants keep the scheduler byte-identical to the serial path:

1. **per-application FIFO** — each lane's queues are strict FIFOs, so
   batches of one application pass through each stage in submission
   order;
2. **at most one in flight per (lane, stage)** — a lane is never on a
   ready-queue (or being worked) twice for the same stage, so no two
   workers can reorder one application's batches.

Across applications, batches proceed independently and the pool is
work-conserving: a worker freed by one tenant immediately serves any
other tenant with a ready batch, where a per-application thread would
have idled.

Backpressure is preserved end to end and stays per-tenant: a lane's
hand-off deque is bounded (a lane is not label-ready while its
hand-off is full, so a slow backend never lets stage A run ahead
unboundedly *and* never blocks a shared worker), its ingress deque is
bounded (``submit`` blocks the producer), and the ready-queues are
bounded by construction — invariant 2 means each queue holds at most
one entry per application.

A :class:`~repro.runtime.tuner.BatchSizeTuner` can be attached; every
stage-A completion feeds it a ``(queries, seconds)`` observation, so
the stream layer's batch sizes track the labeling cost the pool is
actually measuring. ``dispatch_feedback`` runs on the worker that
completed stage B, before the batch's future resolves. Neither hook
can kill a worker: their failures are counted per lane and the batch
still resolves.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from collections.abc import Callable
from typing import Any

from repro.errors import ServiceError
from repro.runtime.tuner import BatchSizeTuner

_SENTINEL = object()
# retire token for live shrink: exactly one worker consumes it between
# batches (a stage boundary) and exits; in-flight batches are untouched
_RETIRE = object()


class StagedFuture:
    """Completion handle for one submitted batch."""

    __slots__ = ("application", "_event", "_value", "_error", "_callbacks", "_cb_lock")

    def __init__(self, application: str) -> None:
        self.application = application
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["StagedFuture"], None]] = []
        self._cb_lock = threading.Lock()

    def _resolve(self, value: Any = None, error: BaseException | None = None) -> None:
        self._value = value
        self._error = error
        with self._cb_lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except BaseException:  # noqa: BLE001 - callbacks never kill a worker
                pass

    def add_done_callback(
        self, callback: Callable[["StagedFuture"], None]
    ) -> None:
        """Run ``callback(self)`` once the future resolves.

        Called on the pool worker that resolved the batch (or
        immediately, in the registering thread, when already done) —
        the bridge asyncio producers use to get completions back onto
        their event loop without parking a thread in :meth:`result`.
        Each registered callback runs exactly once; exceptions are
        swallowed — a broken observer must not kill a pool worker or
        fail the batch.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        try:
            callback(self)
        except BaseException:  # noqa: BLE001 - observer isolation
            pass

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The dispatch stage's return value; re-raises stage errors."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"batch for {self.application!r} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value


class _Lane:
    """One application's scheduling state: queues and counters, no threads.

    ``cond``'s lock guards every mutable field. ``label_busy`` /
    ``dispatch_busy`` are true while the lane is on the corresponding
    ready-queue *or* a worker is running that stage for it — the
    at-most-one-in-flight-per-stage invariant is exactly "this flag is
    set". Producers blocked on a full ingress wait on ``cond``; a
    worker popping the ingress (or ``close`` marking the lane closed)
    notifies them.
    """

    __slots__ = (
        "application",
        "cond",
        "ingress",
        "handoff",
        "closed",
        "label_busy",
        "dispatch_busy",
        "submitted",
        "labeled_batches",
        "labeled_queries",
        "dispatched_batches",
        "label_seconds",
        "dispatch_seconds",
        "label_errors",
        "dispatch_errors",
        "feedback_errors",
        "max_handoff_depth",
    )

    def __init__(self, application: str) -> None:
        self.application = application
        self.cond = threading.Condition()
        self.ingress: deque = deque()  # (item, future), bounded via cond
        self.handoff: deque = deque()  # (staged, future), bounded by depth
        self.closed = False
        self.label_busy = False
        self.dispatch_busy = False
        self.submitted = 0
        self.labeled_batches = 0
        self.labeled_queries = 0
        self.dispatched_batches = 0
        self.label_seconds = 0.0
        self.dispatch_seconds = 0.0
        self.label_errors = 0
        self.dispatch_errors = 0
        self.feedback_errors = 0
        self.max_handoff_depth = 0

    def snapshot(self) -> dict:
        with self.cond:
            return {
                "submitted": self.submitted,
                "labeled_batches": self.labeled_batches,
                "labeled_queries": self.labeled_queries,
                "dispatched_batches": self.dispatched_batches,
                "label_seconds": self.label_seconds,
                "dispatch_seconds": self.dispatch_seconds,
                "label_errors": self.label_errors,
                "dispatch_errors": self.dispatch_errors,
                "feedback_errors": self.feedback_errors,
                "ingress_depth": len(self.ingress),
                "handoff_depth": len(self.handoff),
                "max_handoff_depth": self.max_handoff_depth,
                "label_busy": self.label_busy,
                "dispatch_busy": self.dispatch_busy,
            }


class StagedExecutor:
    """Pipeline label (stage A) and place (stage B) across batches on a
    shared worker pool.

    ``label_fn(application, item)`` produces the intermediate value
    (the labeled batch); ``dispatch_fn(application, intermediate)``
    places it and produces the future's result. Exceptions in either
    stage resolve that batch's future with the error and leave every
    other batch — and every pool worker — untouched.

    ``label_workers`` / ``dispatch_workers`` size the two stage pools;
    the executor owns exactly ``label_workers + dispatch_workers``
    threads regardless of how many applications submit, so a
    many-tenant deployment no longer pays two threads per application.
    Within one application, batches still flow strictly in order
    through both stages (see the module docstring's invariants), so
    labels and backend outcomes are byte-identical to the serial loop.

    ``dispatch_feedback(application, result)``, when given, runs on
    the pool worker that completed stage B, after every successful
    completion and before the future resolves — the hook the service
    uses to feed admission outcomes from each
    :class:`~repro.backends.router.DispatchReport` back into the
    :class:`~repro.runtime.tuner.BatchSizeTuner`. Feedback (and tuner)
    failures are counted per lane (``feedback_errors``) and never fail
    the batch or the worker.

    Use as a context manager, or call :meth:`close` — pending work is
    drained (every accepted future resolves) before the pool shuts
    down.
    """

    def __init__(
        self,
        label_fn: Callable[[str, Any], Any],
        dispatch_fn: Callable[[str, Any], Any],
        queue_depth: int = 4,
        tuner: BatchSizeTuner | None = None,
        dispatch_feedback: Callable[[str, Any], None] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        label_workers: int = 2,
        dispatch_workers: int = 4,
    ) -> None:
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        if label_workers < 1 or dispatch_workers < 1:
            raise ServiceError("label_workers and dispatch_workers must be >= 1")
        self._label_fn = label_fn
        self._dispatch_fn = dispatch_fn
        self.queue_depth = int(queue_depth)
        self.label_workers = int(label_workers)
        self.dispatch_workers = int(dispatch_workers)
        self.tuner = tuner
        self._dispatch_feedback = dispatch_feedback
        self._clock = clock
        self._lanes: dict[str, _Lane] = {}
        self._lanes_lock = threading.Lock()
        self._closed = False
        self._close_done = threading.Event()
        self._started_at = clock()
        # each ready-queue holds at most one entry per lane (plus the
        # shutdown sentinels), so both are bounded by the tenant count
        self._label_ready: queue.SimpleQueue = queue.SimpleQueue()
        self._dispatch_ready: queue.SimpleQueue = queue.SimpleQueue()
        # accepted-future ledger: submit increments, resolution
        # decrements; close() drains by waiting for zero. Worker-death
        # bookkeeping shares the condition: a dying worker notifies, so
        # the drain wait needs no poll timeout
        self._drain = threading.Condition()
        self._outstanding = 0
        self._workers_alive = 0  # incremented by _spawn_worker
        # pool occupancy (workers currently inside a stage fn)
        self._pool_lock = threading.Lock()
        self._label_active = 0
        self._dispatch_active = 0
        self._max_label_active = 0
        self._max_dispatch_active = 0
        # interval-windowed high-water marks: same signal as the
        # lifetime peaks, but resettable (pool_window) so a periodic
        # planner sees each interval's saturation, not history's
        self._window_max_label_active = 0
        self._window_max_dispatch_active = 0
        self._window_started_at = clock()
        # live resize bookkeeping: spawn indices keep thread names
        # unique across generations, the ledger counts resizes
        self._resize_lock = threading.Lock()
        self._label_spawned = 0
        self._dispatch_spawned = 0
        self._resizes = 0
        self._workers_retired = 0
        self._label_threads: list[threading.Thread] = []
        self._dispatch_threads: list[threading.Thread] = []
        for _ in range(self.label_workers):
            self._spawn_worker("label")
        for _ in range(self.dispatch_workers):
            self._spawn_worker("dispatch")

    def _spawn_worker(self, stage: str) -> None:
        """Start one stage worker and record it (caller must hold
        ``_resize_lock`` when resizing; construction is single-threaded)."""
        if stage == "label":
            index, self._label_spawned = self._label_spawned, self._label_spawned + 1
            thread = threading.Thread(
                target=self._label_loop, name=f"querc-label-{index}", daemon=True
            )
            self._label_threads.append(thread)
        else:
            index, self._dispatch_spawned = (
                self._dispatch_spawned,
                self._dispatch_spawned + 1,
            )
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"querc-dispatch-{index}",
                daemon=True,
            )
            self._dispatch_threads.append(thread)
        with self._drain:
            self._workers_alive += 1
        thread.start()

    # -- submission ----------------------------------------------------------------

    def submit(self, application: str, item: Any) -> StagedFuture:
        """Queue one batch onto its application's lane.

        Blocks when the lane's ingress is full — backpressure from a
        slow stage propagates to the producer instead of buffering
        without bound, and it is per-tenant: one application's full
        lane never blocks another's submit. Once this method returns a
        future, that future is guaranteed to resolve (value or error),
        even if :meth:`close` races the submission.
        """
        lane = self._lane(application)
        future = StagedFuture(application)
        with lane.cond:
            while len(lane.ingress) >= self.queue_depth and not lane.closed:
                lane.cond.wait()
            if lane.closed:
                raise ServiceError("executor is closed")
            lane.ingress.append((item, future))
            lane.submitted += 1
            with self._drain:
                self._outstanding += 1
            self._maybe_schedule_label(lane)
        return future

    def try_submit(self, application: str, item: Any) -> StagedFuture | None:
        """Non-blocking :meth:`submit`: ``None`` when the lane is full.

        The coroutine-producer flavor — an asyncio session must never
        park its event-loop thread in ``submit``'s backpressure wait,
        so it offers the batch, and on ``None`` awaits lane room its
        own way (the serving tier waits on batch completions) before
        offering again. A returned future carries the same guarantee
        as ``submit``'s: it will resolve, even across a racing
        :meth:`close`.
        """
        lane = self._lane(application)
        with lane.cond:
            if lane.closed:
                raise ServiceError("executor is closed")
            if len(lane.ingress) >= self.queue_depth:
                return None
            future = StagedFuture(application)
            lane.ingress.append((item, future))
            lane.submitted += 1
            with self._drain:
                self._outstanding += 1
            self._maybe_schedule_label(lane)
        return future

    def map(self, items, application_of=None) -> list:
        """Submit every item, wait, and return results in input order.

        ``application_of`` extracts the lane key (defaults to the
        item's ``application`` attribute — a
        :class:`~repro.workloads.stream.StreamBatch` works as-is).
        Raises the first failed batch's error, like the serial loop
        would.
        """
        key = application_of or (lambda item: item.application)
        futures = [self.submit(key(item), item) for item in items]
        return [f.result() for f in futures]

    # -- lanes ---------------------------------------------------------------------

    def _lane(self, application: str) -> _Lane:
        with self._lanes_lock:
            if self._closed:
                # close() snapshots lanes under this lock; a lane born
                # after that snapshot would never be drained
                raise ServiceError("executor is closed")
            lane = self._lanes.get(application)
            if lane is None:
                lane = self._lanes[application] = _Lane(application)
        return lane

    def _maybe_schedule_label(self, lane: _Lane) -> None:
        """Put the lane on the stage-A ready-queue if eligible.

        Caller holds ``lane.cond``. Eligible means: work waiting, no
        batch of this lane already in stage A, and room in the
        hand-off — a full hand-off keeps the lane un-ready instead of
        letting a label worker block on it, so a slow backend
        backpressures its own tenant without stalling the shared pool.
        """
        if (
            lane.label_busy
            or not lane.ingress
            or len(lane.handoff) >= self.queue_depth
        ):
            return
        lane.label_busy = True
        self._label_ready.put(lane)

    def _maybe_schedule_dispatch(self, lane: _Lane) -> None:
        """Put the lane on the stage-B ready-queue if eligible (caller
        holds ``lane.cond``)."""
        if lane.dispatch_busy or not lane.handoff:
            return
        lane.dispatch_busy = True
        self._dispatch_ready.put(lane)

    # -- workers -------------------------------------------------------------------

    def _resolve_future(
        self, future: StagedFuture, value: Any = None,
        error: BaseException | None = None,
    ) -> None:
        future._resolve(value=value, error=error)
        with self._drain:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._drain.notify_all()

    def _pool_enter(self, stage: str) -> None:
        with self._pool_lock:
            if stage == "label":
                self._label_active += 1
                self._max_label_active = max(
                    self._max_label_active, self._label_active
                )
                self._window_max_label_active = max(
                    self._window_max_label_active, self._label_active
                )
            else:
                self._dispatch_active += 1
                self._max_dispatch_active = max(
                    self._max_dispatch_active, self._dispatch_active
                )
                self._window_max_dispatch_active = max(
                    self._window_max_dispatch_active, self._dispatch_active
                )

    def _pool_exit(self, stage: str) -> None:
        with self._pool_lock:
            if stage == "label":
                self._label_active -= 1
            else:
                self._dispatch_active -= 1

    def _worker_exit(self) -> None:
        """Count a worker out (sentinel or death) and wake the drain.

        ``close()`` waits on the drain condition with no timeout; a
        worker dying with work outstanding must notify, or the drain
        could wait on a resolution that can no longer happen.
        """
        with self._drain:
            self._workers_alive -= 1
            self._drain.notify_all()

    def _label_loop(self) -> None:
        # the loop shape guarantees a worker survives *anything* a batch
        # throws at it: once (item, future) is popped, the except/finally
        # pair resolves the future and releases the lane no matter what
        # fails inside — stage fn, hooks, even an injected clock
        try:
            while True:
                lane = self._label_ready.get()
                if lane is _SENTINEL:
                    return
                if lane is _RETIRE:
                    with self._drain:
                        self._workers_retired += 1
                    return
                with lane.cond:
                    item, future = lane.ingress.popleft()
                    # ingress slot freed: wake one blocked producer
                    lane.cond.notify()
                try:
                    self._label_one(lane, item, future)
                except BaseException as exc:  # noqa: BLE001 - never kill the worker
                    if not future.done():
                        with lane.cond:
                            lane.label_errors += 1
                        self._resolve_future(future, error=exc)
                finally:
                    with lane.cond:
                        lane.label_busy = False
                        self._maybe_schedule_label(lane)
        finally:
            self._worker_exit()

    def _label_one(self, lane: _Lane, item: Any, future: StagedFuture) -> None:
        """Run one batch through stage A and hand it to stage B."""
        self._pool_enter("label")
        try:
            start = self._clock()
            try:
                staged = self._label_fn(lane.application, item)
                error: BaseException | None = None
            except BaseException as exc:  # noqa: BLE001 - resolve, don't kill the worker
                staged, error = None, exc
            elapsed = self._clock() - start
        finally:
            self._pool_exit("label")
        if error is not None:
            with lane.cond:
                lane.label_errors += 1
                lane.label_seconds += elapsed
            self._resolve_future(future, error=error)
            return
        try:
            n = len(item)
        except Exception:  # noqa: BLE001 - a hostile __len__ must not kill the worker
            n = 1
        with lane.cond:
            lane.labeled_batches += 1
            lane.label_seconds += elapsed
            lane.labeled_queries += n
        if self.tuner is not None:
            try:
                self.tuner.observe(n, elapsed, application=lane.application)
            except BaseException:  # noqa: BLE001 - observations never kill a worker
                with lane.cond:
                    lane.feedback_errors += 1
        with lane.cond:
            lane.handoff.append((staged, future))
            lane.max_handoff_depth = max(
                lane.max_handoff_depth, len(lane.handoff)
            )
            self._maybe_schedule_dispatch(lane)

    def _dispatch_loop(self) -> None:
        try:
            while True:
                lane = self._dispatch_ready.get()
                if lane is _SENTINEL:
                    return
                if lane is _RETIRE:
                    with self._drain:
                        self._workers_retired += 1
                    return
                with lane.cond:
                    staged, future = lane.handoff.popleft()
                    # a hand-off slot freed: stage A may resume this lane
                    self._maybe_schedule_label(lane)
                try:
                    self._dispatch_one(lane, staged, future)
                except BaseException as exc:  # noqa: BLE001 - never kill the worker
                    if not future.done():
                        with lane.cond:
                            lane.dispatch_errors += 1
                        self._resolve_future(future, error=exc)
                finally:
                    with lane.cond:
                        lane.dispatch_busy = False
                        self._maybe_schedule_dispatch(lane)
        finally:
            self._worker_exit()

    def _dispatch_one(
        self, lane: _Lane, staged: Any, future: StagedFuture
    ) -> None:
        """Run one staged batch through stage B and resolve its future."""
        self._pool_enter("dispatch")
        try:
            start = self._clock()
            try:
                result = self._dispatch_fn(lane.application, staged)
                error: BaseException | None = None
            except BaseException as exc:  # noqa: BLE001 - resolve, don't kill the worker
                result, error = None, exc
            elapsed = self._clock() - start
        finally:
            self._pool_exit("dispatch")
        feedback_failed = False
        if error is None and self._dispatch_feedback is not None:
            try:
                self._dispatch_feedback(lane.application, result)
            except BaseException:  # noqa: BLE001 - feedback never fails the batch
                feedback_failed = True
        with lane.cond:
            lane.dispatch_seconds += elapsed
            if error is None:
                lane.dispatched_batches += 1
            else:
                lane.dispatch_errors += 1
            if feedback_failed:
                lane.feedback_errors += 1
        self._resolve_future(future, value=result, error=error)

    # -- lifecycle -----------------------------------------------------------------

    def resize(
        self,
        label_workers: int | None = None,
        dispatch_workers: int | None = None,
    ) -> dict:
        """Re-provision the stage pools live; returns the pool snapshot.

        Growing a stage spawns fresh workers that start pulling ready
        lanes immediately. Shrinking posts retire tokens on the stage's
        ready-queue: each token is consumed by exactly one worker *at a
        stage boundary* — between batches, never inside one — so lanes,
        per-application FIFO order, and byte-identical outcomes are all
        preserved; the thread count converges to the new target as the
        tokens are drained. Both targets must stay >= 1. Safe to call
        from any thread, including a dispatch-feedback hook running on
        a pool worker (the worker that applies a shrink can be the one
        that later retires). Raises once the executor is closed.
        """
        with self._resize_lock:
            with self._lanes_lock:
                if self._closed:
                    raise ServiceError("executor is closed")
            changed = False
            if label_workers is not None and label_workers != self.label_workers:
                if label_workers < 1:
                    raise ServiceError("label_workers must be >= 1")
                delta = label_workers - self.label_workers
                self.label_workers = int(label_workers)
                for _ in range(delta):
                    self._spawn_worker("label")
                for _ in range(-delta):
                    self._label_ready.put(_RETIRE)
                changed = True
            if (
                dispatch_workers is not None
                and dispatch_workers != self.dispatch_workers
            ):
                if dispatch_workers < 1:
                    raise ServiceError("dispatch_workers must be >= 1")
                delta = dispatch_workers - self.dispatch_workers
                self.dispatch_workers = int(dispatch_workers)
                for _ in range(delta):
                    self._spawn_worker("dispatch")
                for _ in range(-delta):
                    self._dispatch_ready.put(_RETIRE)
                changed = True
            if changed:
                with self._drain:
                    self._resizes += 1
        return self.stats()["pool"]

    def pool_window(self, reset: bool = False) -> dict:
        """Occupancy high-water marks since the last window reset.

        The resettable flavor of the lifetime ``max_*_active`` peaks:
        a periodic planner reads (and resets) the window each interval,
        so the marks answer "how many workers did this interval
        actually need" instead of "how many did history ever need".
        Resetting re-seeds each mark with the stage's *current*
        occupancy — a worker mid-batch at the reset instant still
        counts against the new window.
        """
        with self._pool_lock:
            window = {
                "window_max_label_active": self._window_max_label_active,
                "window_max_dispatch_active": self._window_max_dispatch_active,
                "window_seconds": max(
                    self._clock() - self._window_started_at, 0.0
                ),
            }
            if reset:
                self._window_max_label_active = self._label_active
                self._window_max_dispatch_active = self._dispatch_active
                self._window_started_at = self._clock()
        return window

    def close(self) -> None:
        """Drain every lane, then stop the pool (idempotent).

        Ordering guarantees:

        1. producers blocked in :meth:`submit` wake and raise (their
           futures were never accepted);
        2. every *accepted* future resolves — with its stage's value
           or error — before the workers stop;
        3. only then are the worker threads joined.

        A future that somehow survives the drain (a stage function
        swallowing its own worker, which the loops do not allow) is
        resolved with a :class:`ServiceError` rather than left to
        strand its waiter. Concurrent callers block until the first
        caller's shutdown completes, so *every* returning ``close()``
        may rely on the guarantees above.
        """
        with self._lanes_lock:
            already_closing = self._closed
            self._closed = True
            lanes = list(self._lanes.values())
        if already_closing:
            # another close() is (or was) doing the work; returning
            # before it finishes would void the drain guarantee
            self._close_done.wait()
            return
        try:
            for lane in lanes:
                with lane.cond:
                    lane.closed = True
                    lane.cond.notify_all()
            with self._drain:
                # a worker can only die on an uncaught non-stage error;
                # if the whole pool is gone, fall through to the sweep
                # instead of waiting on a drain that cannot happen.
                # Resolutions and worker deaths both notify, so this
                # wait needs no poll timeout
                while self._outstanding > 0 and self._workers_alive > 0:
                    self._drain.wait()
            for _ in self._label_threads:
                self._label_ready.put(_SENTINEL)
            for _ in self._dispatch_threads:
                self._dispatch_ready.put(_SENTINEL)
            for thread in self._label_threads + self._dispatch_threads:
                thread.join()
            # belt and braces: no future may ever be stranded by close()
            leftovers: list[StagedFuture] = []
            for lane in lanes:
                with lane.cond:
                    leftovers.extend(
                        f for _, f in list(lane.ingress) + list(lane.handoff)
                        if not f.done()
                    )
                    lane.ingress.clear()
                    lane.handoff.clear()
            for future in leftovers:
                future._resolve(
                    error=ServiceError("executor closed before the batch ran")
                )
        finally:
            # unblock concurrent close() callers even on a failed
            # shutdown — stranding them is worse than an early wake
            self._close_done.set()

    def __enter__(self) -> "StagedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------------------

    def stats(self) -> dict:
        """Per-lane counters, pool occupancy, and an overlap estimate.

        ``pool`` reports the configured worker counts, how many
        workers are inside each stage right now, and the high-water
        marks — occupancy near the configured size means the pool is
        the bottleneck and could grow; near zero means it is idle.
        ``busy_seconds`` sums stage time across lanes; with
        ``wall_seconds`` it bounds the concurrency the staged layout
        actually achieved (busy/wall == 1.0 means no overlap at all).
        Per-tenant queue depths are in ``lanes`` (``ingress_depth`` /
        ``handoff_depth``).
        """
        with self._lanes_lock:
            lanes = {app: lane.snapshot() for app, lane in self._lanes.items()}
        busy = sum(
            s["label_seconds"] + s["dispatch_seconds"] for s in lanes.values()
        )
        wall = max(self._clock() - self._started_at, 1e-12)
        with self._drain:
            workers_alive = self._workers_alive
            resizes = self._resizes
            retired = self._workers_retired
        with self._pool_lock:
            pool = {
                "label_workers": self.label_workers,
                "dispatch_workers": self.dispatch_workers,
                "threads": self.label_workers + self.dispatch_workers,
                "workers_alive": workers_alive,
                "resizes": resizes,
                "workers_retired": retired,
                "label_active": self._label_active,
                "dispatch_active": self._dispatch_active,
                "max_label_active": self._max_label_active,
                "max_dispatch_active": self._max_dispatch_active,
                "window_max_label_active": self._window_max_label_active,
                "window_max_dispatch_active": self._window_max_dispatch_active,
                "window_seconds": max(
                    self._clock() - self._window_started_at, 0.0
                ),
            }
        return {
            "queue_depth": self.queue_depth,
            "tenants": len(lanes),
            "pool": pool,
            "lanes": dict(sorted(lanes.items())),
            "busy_seconds": busy,
            "wall_seconds": wall,
            "overlap": busy / wall,
        }

"""Concurrent staged execution: the Qworker fan-out, made real.

The paper's Figure 1 draws many Qworkers consuming per-application
query streams side by side; until this layer the reproduction ran them
strictly one batch at a time — fingerprint → embed → predict → route →
execute in one thread, so a slow embedder on one application stalled
every other tenant and the CPU idled while a backend executed.

:class:`StagedExecutor` splits each batch's life into two stages and
pipelines them across batches:

* **stage A** — label: fingerprint + dedup + embed + predict on the
  shared :class:`~repro.runtime.pipeline.InferencePipeline` (CPU
  bound);
* **stage B** — place: route + admission + execute on the
  :class:`~repro.backends.router.BatchRouter` and its backends
  (typically dominated by backend latency).

Each application gets its own **lane**: one stage-A thread and one
stage-B thread joined by a bounded hand-off queue. Within a lane,
batch *n+1* is being embedded while batch *n* executes on its backend;
across lanes, tenants proceed independently, so one application's slow
embedder can no longer head-of-line-block another's stream. Both
stages of one application stay single-threaded, which preserves the
serial path's per-application ordering exactly — the labeled output
and backend outcomes are the same, they just stop waiting on each
other. The shared pieces (embedding cache, namespace assignment,
``RuntimeMetrics``, admission controllers, backend counters) are all
lock-safe already.

Bounded queues give the executor backpressure end to end: when a
backend falls behind, its lane's hand-off queue fills, stage A blocks,
the lane's ingress queue fills, and finally ``submit`` blocks the
producer — memory stays bounded no matter how fast batches arrive.

A :class:`~repro.runtime.tuner.BatchSizeTuner` can be attached; every
stage-A completion feeds it a ``(queries, seconds)`` observation, so
the stream layer's batch sizes track the labeling cost the executor is
actually measuring.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.errors import ServiceError
from repro.runtime.tuner import BatchSizeTuner

_SENTINEL = object()


class StagedFuture:
    """Completion handle for one submitted batch."""

    __slots__ = ("application", "_event", "_value", "_error")

    def __init__(self, application: str) -> None:
        self.application = application
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    def _resolve(self, value: Any = None, error: BaseException | None = None) -> None:
        self._value = value
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The dispatch stage's return value; re-raises stage errors."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"batch for {self.application!r} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value


class _Lane:
    """One application's pipeline: stage-A thread → queue → stage-B thread."""

    def __init__(self, application: str, queue_depth: int) -> None:
        self.application = application
        self.ingress: queue.Queue = queue.Queue(maxsize=queue_depth)
        self.handoff: queue.Queue = queue.Queue(maxsize=queue_depth)
        self.label_thread: threading.Thread | None = None
        self.dispatch_thread: threading.Thread | None = None
        # serializes producers against shutdown: once `closed` is set
        # (under this lock) the shutdown sentinel is the last entry the
        # ingress queue will ever receive, so no future can be enqueued
        # behind it and starve forever
        self.submit_lock = threading.Lock()
        self.closed = False
        # counters are only written by the lane's own two threads; the
        # lock makes stats() reads consistent
        self.lock = threading.Lock()
        self.submitted = 0
        self.labeled_batches = 0
        self.labeled_queries = 0
        self.dispatched_batches = 0
        self.label_seconds = 0.0
        self.dispatch_seconds = 0.0
        self.label_errors = 0
        self.dispatch_errors = 0
        self.feedback_errors = 0
        self.max_handoff_depth = 0

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "submitted": self.submitted,
                "labeled_batches": self.labeled_batches,
                "labeled_queries": self.labeled_queries,
                "dispatched_batches": self.dispatched_batches,
                "label_seconds": self.label_seconds,
                "dispatch_seconds": self.dispatch_seconds,
                "label_errors": self.label_errors,
                "dispatch_errors": self.dispatch_errors,
                "feedback_errors": self.feedback_errors,
                "ingress_depth": self.ingress.qsize(),
                "handoff_depth": self.handoff.qsize(),
                "max_handoff_depth": self.max_handoff_depth,
            }


class StagedExecutor:
    """Pipeline label (stage A) and place (stage B) across batches.

    ``label_fn(application, item)`` produces the intermediate value
    (the labeled batch); ``dispatch_fn(application, intermediate)``
    places it and produces the future's result. Exceptions in either
    stage resolve that batch's future with the error and leave every
    other batch untouched.

    ``dispatch_feedback(application, result)``, when given, runs on
    the lane's dispatch thread after every successful stage-B
    completion — the hook the service uses to feed admission outcomes
    from each :class:`~repro.backends.router.DispatchReport` back into
    the :class:`~repro.runtime.tuner.BatchSizeTuner`. Feedback
    failures are counted per lane (``feedback_errors``) and never fail
    the batch.

    Use as a context manager, or call :meth:`close` — pending work is
    drained before the lanes shut down.
    """

    def __init__(
        self,
        label_fn: Callable[[str, Any], Any],
        dispatch_fn: Callable[[str, Any], Any],
        queue_depth: int = 4,
        tuner: BatchSizeTuner | None = None,
        dispatch_feedback: Callable[[str, Any], None] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        self._label_fn = label_fn
        self._dispatch_fn = dispatch_fn
        self.queue_depth = int(queue_depth)
        self.tuner = tuner
        self._dispatch_feedback = dispatch_feedback
        self._clock = clock
        self._lanes: dict[str, _Lane] = {}
        self._lanes_lock = threading.Lock()
        self._closed = False
        self._started_at = clock()

    # -- submission ----------------------------------------------------------------

    def submit(self, application: str, item: Any) -> StagedFuture:
        """Queue one batch onto its application's lane.

        Blocks when the lane's ingress queue is full — backpressure
        from a slow stage propagates to the producer instead of
        buffering without bound.
        """
        if self._closed:
            raise ServiceError("executor is closed")
        lane = self._lane(application)
        future = StagedFuture(application)
        with lane.submit_lock:
            if lane.closed:
                raise ServiceError("executor is closed")
            with lane.lock:
                lane.submitted += 1
            # may block on backpressure while holding submit_lock; the
            # lane's label thread keeps consuming until it sees the
            # sentinel (which close() can only enqueue under this same
            # lock), so the put always completes
            lane.ingress.put((item, future))
        return future

    def map(self, items, application_of=None) -> list:
        """Submit every item, wait, and return results in input order.

        ``application_of`` extracts the lane key (defaults to the
        item's ``application`` attribute — a
        :class:`~repro.workloads.stream.StreamBatch` works as-is).
        Raises the first failed batch's error, like the serial loop
        would.
        """
        key = application_of or (lambda item: item.application)
        futures = [self.submit(key(item), item) for item in items]
        return [f.result() for f in futures]

    # -- lanes ---------------------------------------------------------------------

    def _lane(self, application: str) -> _Lane:
        with self._lanes_lock:
            if self._closed:
                # close() snapshots lanes under this lock; a lane born
                # after that snapshot would never get its sentinel
                raise ServiceError("executor is closed")
            lane = self._lanes.get(application)
            if lane is None:
                lane = _Lane(application, self.queue_depth)
                lane.label_thread = threading.Thread(
                    target=self._label_loop,
                    args=(lane,),
                    name=f"querc-label-{application}",
                    daemon=True,
                )
                lane.dispatch_thread = threading.Thread(
                    target=self._dispatch_loop,
                    args=(lane,),
                    name=f"querc-dispatch-{application}",
                    daemon=True,
                )
                self._lanes[application] = lane
                lane.label_thread.start()
                lane.dispatch_thread.start()
        return lane

    def _label_loop(self, lane: _Lane) -> None:
        while True:
            entry = lane.ingress.get()
            if entry is _SENTINEL:
                lane.handoff.put(_SENTINEL)
                return
            item, future = entry
            start = self._clock()
            try:
                staged = self._label_fn(lane.application, item)
            except BaseException as exc:  # noqa: BLE001 - resolve, don't kill the lane
                with lane.lock:
                    lane.label_errors += 1
                future._resolve(error=exc)
                continue
            elapsed = self._clock() - start
            try:
                n = len(item)
            except TypeError:
                n = 1
            with lane.lock:
                lane.labeled_batches += 1
                lane.label_seconds += elapsed
                lane.labeled_queries += n
            if self.tuner is not None:
                self.tuner.observe(n, elapsed, application=lane.application)
            lane.handoff.put((staged, future))
            with lane.lock:
                lane.max_handoff_depth = max(
                    lane.max_handoff_depth, lane.handoff.qsize()
                )

    def _dispatch_loop(self, lane: _Lane) -> None:
        while True:
            entry = lane.handoff.get()
            if entry is _SENTINEL:
                return
            staged, future = entry
            start = self._clock()
            try:
                result = self._dispatch_fn(lane.application, staged)
            except BaseException as exc:  # noqa: BLE001 - resolve, don't kill the lane
                with lane.lock:
                    lane.dispatch_errors += 1
                    lane.dispatch_seconds += self._clock() - start
                future._resolve(error=exc)
                continue
            with lane.lock:
                lane.dispatched_batches += 1
                lane.dispatch_seconds += self._clock() - start
            if self._dispatch_feedback is not None:
                try:
                    self._dispatch_feedback(lane.application, result)
                except Exception:  # noqa: BLE001 - feedback never fails the batch
                    with lane.lock:
                        lane.feedback_errors += 1
            future._resolve(value=result)

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Drain every lane and stop its threads (idempotent)."""
        with self._lanes_lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes.values())
        for lane in lanes:
            with lane.submit_lock:
                lane.closed = True
                lane.ingress.put(_SENTINEL)
        for lane in lanes:
            if lane.label_thread is not None:
                lane.label_thread.join()
            if lane.dispatch_thread is not None:
                lane.dispatch_thread.join()

    def __enter__(self) -> "StagedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------------------

    def stats(self) -> dict:
        """Per-lane counters plus an overlap estimate.

        ``busy_seconds`` sums stage time across lanes; with
        ``wall_seconds`` it bounds the concurrency the staged layout
        actually achieved (busy/wall == 1.0 means no overlap at all).
        """
        with self._lanes_lock:
            lanes = {app: lane.snapshot() for app, lane in self._lanes.items()}
        busy = sum(
            s["label_seconds"] + s["dispatch_seconds"] for s in lanes.values()
        )
        wall = max(self._clock() - self._started_at, 1e-12)
        return {
            "queue_depth": self.queue_depth,
            "lanes": dict(sorted(lanes.items())),
            "busy_seconds": busy,
            "wall_seconds": wall,
            "overlap": busy / wall,
        }

"""Batch-size autotuning from observed stage timings.

The stream layer has to pick a batch size before it knows what the
batch costs; the runtime knows exactly what batches cost (per-stage
wall time in :class:`~repro.runtime.metrics.RuntimeMetrics`, per-batch
timings in the staged executor) but has no say in batching. The
:class:`BatchSizeTuner` closes that loop: it consumes per-batch
``(queries, seconds)`` observations of the labeling stage and
recommends the largest batch size whose expected stage-A latency still
fits a configured budget — big batches keep the embed stage saturated
(more dedup mass, fewer ``transform`` calls), small batches bound the
tail latency a queued query can suffer behind its batch.

Observations are smoothed with an exponential moving average of the
*per-query* cost, so the recommendation converges under steady cost
and re-converges after a cost shift (e.g. an embedder swap or a cache
going cold). Growth per step is bounded so one outlier batch cannot
slam the size across its whole range. State is kept per application —
one tenant's slow embedder must not shrink another tenant's batches.

The backend side of the loop closes through
:meth:`BatchSizeTuner.observe_admission`: dispatch reports feed the
tuner the fraction of each batch the admission gates turned away, and
a sustained rejection EWMA shrinks the recommendation below what the
labeling-latency fit would allow — when a gate has no headroom,
smaller offers are the only ones that clear it.

Everything is deterministic: the tuner never sleeps and never reads a
wall clock for its decisions; the injectable ``clock`` only timestamps
observations for the ``snapshot()`` view.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.errors import ServiceError
from repro.runtime.metrics import STAGES as LABEL_STAGES

# LABEL_STAGES are the pipeline's stage-A timings that feed
# observe_stats(); ROUTING_STAGES (route/execute) are stage B and
# deliberately excluded — batch size should track labeling cost, not
# backend latency


class _LaneState:
    """Per-application tuning state (EWMA + current recommendation)."""

    __slots__ = (
        "size",
        "per_query_ewma",
        "samples",
        "last_seconds",
        "last_at",
        "rejection_ewma",
        "admission_samples",
        "fault_ewma",
        "fault_samples",
    )

    def __init__(self, size: int) -> None:
        self.size = size
        self.per_query_ewma: float | None = None
        self.samples = 0
        self.last_seconds = 0.0
        self.last_at: float | None = None
        # admission-headroom feedback: smoothed fraction of dispatched
        # work the backends' gates turned away (rejected/queued/spilled)
        self.rejection_ewma = 0.0
        self.admission_samples = 0
        # resilience feedback: smoothed presence of retries/failovers
        # in this lane's dispatches (1.0 = every batch faulted)
        self.fault_ewma = 0.0
        self.fault_samples = 0


class BatchSizeTuner:
    """Adapt stream batch sizes toward a stage-A latency budget.

    ``observe(queries, seconds)`` records what one labeled batch cost;
    ``recommend()`` returns the batch size the stream layer should use
    next. ``observe_admission(offered, admitted)`` closes the *backend*
    side of the loop: when a backend's admission gate is turning work
    away, the recommendation shrinks multiplicatively until the
    rejection EWMA decays below ``rejection_threshold`` — smaller
    batches arrive as smaller admission offers, which is exactly the
    headroom the gate still has. Thread-safe: executor lanes observe
    concurrently while the stream layer asks for recommendations.
    """

    def __init__(
        self,
        initial: int = 32,
        min_size: int = 8,
        max_size: int = 512,
        target_seconds: float = 0.05,
        smoothing: float = 0.4,
        max_growth: float = 2.0,
        rejection_threshold: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not (1 <= min_size <= initial <= max_size):
            raise ServiceError(
                "need 1 <= min_size <= initial <= max_size, got "
                f"min={min_size} initial={initial} max={max_size}"
            )
        if target_seconds <= 0:
            raise ServiceError("target_seconds must be positive")
        if not 0 < smoothing <= 1:
            raise ServiceError("smoothing must be in (0, 1]")
        if max_growth <= 1:
            raise ServiceError("max_growth must be > 1")
        if not 0 < rejection_threshold < 1:
            raise ServiceError("rejection_threshold must be in (0, 1)")
        self.initial = int(initial)
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        self.target_seconds = float(target_seconds)
        self.smoothing = float(smoothing)
        self.max_growth = float(max_growth)
        self.rejection_threshold = float(rejection_threshold)
        self._clock = clock
        self._lanes: dict[str, _LaneState] = {}
        # per-application baselines for observe_stats(); one shared
        # baseline would attribute tenant A's labeling cost to B
        self._last_stats: dict[str, dict] = {}
        self._lock = threading.Lock()

    # -- observations --------------------------------------------------------------

    def observe(
        self, queries: int, seconds: float, application: str = ""
    ) -> int:
        """Record one batch's labeling cost; returns the new recommendation.

        ``queries`` is the batch size that took ``seconds`` of stage-A
        wall time. Zero-query or negative observations are ignored.
        """
        if queries <= 0 or seconds < 0:
            return self.recommend(application)
        per_query = seconds / queries
        with self._lock:
            lane = self._lanes.get(application)
            if lane is None:
                lane = self._lanes[application] = _LaneState(self.initial)
            if lane.per_query_ewma is None:
                lane.per_query_ewma = per_query
            else:
                lane.per_query_ewma += self.smoothing * (
                    per_query - lane.per_query_ewma
                )
            lane.samples += 1
            lane.last_seconds = seconds
            lane.last_at = self._clock()
            lane.size = self._fit(
                lane.size, lane.per_query_ewma, lane.rejection_ewma
            )
            return lane.size

    def observe_admission(
        self, offered: int, admitted: int, application: str = ""
    ) -> int:
        """Record one dispatch's admission outcome; returns the new size.

        ``offered`` is how much work the batch put in front of the
        gates, ``admitted`` how much got in; the shortfall (rejected,
        queued, or spilled) feeds a per-application rejection EWMA.
        While that EWMA sits above ``rejection_threshold`` the
        recommended size shrinks multiplicatively (AIMD-style); once
        full admissions decay it back under the threshold, the normal
        latency fit regrows the size, bounded by ``max_growth`` per
        step.
        """
        if offered <= 0:
            return self.recommend(application)
        turned_away = min(1.0, max(0.0, 1.0 - admitted / offered))
        with self._lock:
            lane = self._lanes.get(application)
            if lane is None:
                lane = self._lanes[application] = _LaneState(self.initial)
            lane.rejection_ewma += self.smoothing * (
                turned_away - lane.rejection_ewma
            )
            lane.admission_samples += 1
            if lane.per_query_ewma is not None:
                # an admission observation carries no new latency data:
                # it may shrink the size, never grow it — growth stays
                # one bounded step per *labeling* observation
                lane.size = min(
                    lane.size,
                    self._fit(lane.size, lane.per_query_ewma, lane.rejection_ewma),
                )
            elif lane.rejection_ewma > self.rejection_threshold:
                # no labeling fit yet: back off directly from the
                # current size so the gate pressure still bites —
                # bounded by max_growth per step, like _fit
                shrunk = max(
                    lane.size * (1.0 - lane.rejection_ewma),
                    lane.size / self.max_growth,
                )
                lane.size = max(self.min_size, int(shrunk))
            return lane.size

    def observe_faults(
        self, retries: int, failovers: int, application: str = ""
    ) -> int:
        """Record one dispatch's resilience churn; returns the new size.

        ``retries`` / ``failovers`` come from the dispatch report (the
        service's feedback hook forwards them). A batch that needed
        either pulses a per-application fault EWMA toward 1; a clean
        batch decays it. While the EWMA sits above
        ``rejection_threshold`` the recommendation shrinks
        multiplicatively — a flaky backend gets smaller groups, which
        cheapens each retry and leaves headroom on the failover
        sibling — and recovery regrows it through the normal bounded
        latency fit.
        """
        faulted = retries > 0 or failovers > 0
        with self._lock:
            lane = self._lanes.get(application)
            if lane is None:
                if not faulted:
                    return self.initial
                lane = self._lanes[application] = _LaneState(self.initial)
            if faulted:
                lane.fault_ewma += self.smoothing * (1.0 - lane.fault_ewma)
                lane.fault_samples += 1
            else:
                lane.fault_ewma *= 1.0 - self.smoothing
            if faulted and lane.fault_ewma > self.rejection_threshold:
                # same AIMD stance as admission pressure: shrink now,
                # regrow one bounded step per clean labeling fit
                shrunk = max(
                    lane.size * (1.0 - lane.fault_ewma),
                    lane.size / self.max_growth,
                )
                lane.size = max(self.min_size, int(shrunk))
            return lane.size

    def observe_stats(
        self,
        runtime_snapshot: dict,
        application: str = "",
        backends_snapshot: dict | None = None,
    ) -> int:
        """Feed the tuner from ``QuercService.stats()`` views.

        Computes the delta in labeling-stage seconds and query count
        since the previous call (baselines are kept per
        ``application``) and treats it as one aggregate observation —
        the hook for tuning off service-level metrics when per-batch
        timings aren't available. When ``backends_snapshot``
        (``stats()["backends"]``) is given, the dispatched/admitted
        deltas across every backend feed :meth:`observe_admission` as
        well, so a rejecting gate shrinks the recommendation even on
        this aggregate path.

        Attribution is only as scoped as the snapshot: the service's
        default ``RuntimeMetrics`` aggregates every tenant, so with a
        multi-application service this hook mixes tenants' labeling
        cost into whichever ``application`` it is called for. Use it
        with a single-tenant service (or a per-tenant metrics view);
        the staged executor's per-batch :meth:`observe` feed is the
        correctly-attributed path.
        """
        seconds = sum(
            runtime_snapshot.get("stage_seconds", {}).get(s, 0.0)
            for s in LABEL_STAGES
        )
        queries = int(runtime_snapshot.get("queries", 0))
        offered = admitted = 0
        if backends_snapshot:
            # terminal outcomes only: "dispatched" re-counts fallback
            # hand-offs and queue retries, which would overstate the
            # rejection fraction when nothing was actually lost
            admitted = int(
                sum(b.get("admitted", 0) for b in backends_snapshot.values())
            )
            rejected = int(
                sum(b.get("rejected", 0) for b in backends_snapshot.values())
            )
            offered = admitted + rejected
        with self._lock:
            previous = self._last_stats.get(application)
            baseline = {
                "seconds": seconds,
                "queries": queries,
                "offered": offered,
                "admitted": admitted,
            }
            if not backends_snapshot and previous is not None:
                # a snapshot-less call must not zero the admission
                # baseline, or the next snapshot call would re-feed
                # the whole cumulative history as one delta
                baseline["offered"] = previous.get("offered", 0)
                baseline["admitted"] = previous.get("admitted", 0)
            self._last_stats[application] = baseline
        if previous is not None:
            seconds -= previous["seconds"]
            queries -= previous["queries"]
            offered -= previous.get("offered", 0)
            admitted -= previous.get("admitted", 0)
        if backends_snapshot and offered > 0:
            self.observe_admission(offered, admitted, application=application)
        if queries <= 0 or seconds < 0:
            return self.recommend(application)
        return self.observe(queries, seconds, application=application)

    # -- recommendations -----------------------------------------------------------

    def recommend(self, application: str = "") -> int:
        """The batch size the stream layer should use next for this
        application (``initial`` until observations arrive)."""
        with self._lock:
            lane = self._lanes.get(application)
            return lane.size if lane is not None else self.initial

    def _fit(
        self, current: int, per_query_ewma: float, rejection_ewma: float = 0.0
    ) -> int:
        """Largest size whose expected latency fits the budget, with
        per-step growth/shrink bounded by ``max_growth``. A rejection
        EWMA above the threshold caps the fit below the current size —
        admission pressure always wins over the latency headroom."""
        if per_query_ewma <= 0:
            ideal = float(self.max_size)
        else:
            ideal = self.target_seconds / per_query_ewma
        if rejection_ewma > self.rejection_threshold:
            ideal = min(ideal, current * (1.0 - rejection_ewma))
        lo = current / self.max_growth
        hi = current * self.max_growth
        bounded = min(max(ideal, lo), hi)
        return max(self.min_size, min(self.max_size, int(bounded)))

    # -- introspection -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Config plus per-application state, for ``stats()``."""
        with self._lock:
            return {
                "target_seconds": self.target_seconds,
                "min_size": self.min_size,
                "max_size": self.max_size,
                "initial": self.initial,
                "rejection_threshold": self.rejection_threshold,
                "applications": {
                    app: {
                        "size": lane.size,
                        "per_query_ewma_seconds": lane.per_query_ewma,
                        "expected_batch_seconds": (
                            lane.per_query_ewma * lane.size
                            if lane.per_query_ewma is not None
                            else None
                        ),
                        "samples": lane.samples,
                        "last_batch_seconds": lane.last_seconds,
                        "last_observed_at": lane.last_at,
                        "rejection_ewma": lane.rejection_ewma,
                        "admission_samples": lane.admission_samples,
                        "fault_ewma": lane.fault_ewma,
                        "fault_samples": lane.fault_samples,
                    }
                    for app, lane in sorted(self._lanes.items())
                },
            }

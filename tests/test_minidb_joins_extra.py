"""Extra join-path coverage: multi-key joins, semi-join residuals,
cross joins, self-joins, and INLJ/hash equivalence under every path."""

import numpy as np
import pytest

from repro.minidb import Index, IndexConfig


class TestMultiKeyJoins:
    def test_two_column_equi_join_q9_style(self, tpch_db):
        """partsupp joins lineitem on BOTH ps_partkey and ps_suppkey."""
        result = tpch_db.execute(
            "select count(*) from lineitem, partsupp "
            "where ps_partkey = l_partkey and ps_suppkey = l_suppkey"
        )
        li = tpch_db.table("lineitem").columns
        ps = tpch_db.table("partsupp").columns
        pairs = set(zip(ps["ps_partkey"].tolist(), ps["ps_suppkey"].tolist()))
        expected = sum(
            1
            for pk, sk in zip(li["l_partkey"].tolist(), li["l_suppkey"].tolist())
            if (pk, sk) in pairs
        )
        assert result.rows[0][0] == expected

    def test_self_join_with_alias(self, tpch_db):
        result = tpch_db.execute(
            "select count(*) from nation n1, nation n2 "
            "where n1.n_regionkey = n2.n_regionkey and n1.n_nationkey < n2.n_nationkey"
        )
        nat = tpch_db.table("nation").columns
        expected = sum(
            1
            for i in range(25)
            for j in range(25)
            if nat["n_regionkey"][i] == nat["n_regionkey"][j]
            and nat["n_nationkey"][i] < nat["n_nationkey"][j]
        )
        assert result.rows[0][0] == expected


class TestSemiJoinResiduals:
    def test_exists_with_inequality_residual_q21_style(self, tpch_db):
        """EXISTS correlated on orderkey with a <> residual on suppkey."""
        result = tpch_db.execute(
            "select count(*) from lineitem l1 where exists ("
            "select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey "
            "and l2.l_suppkey <> l1.l_suppkey)"
        )
        li = tpch_db.table("lineitem").columns
        keys = li["l_orderkey"].tolist()
        supps = li["l_suppkey"].tolist()
        by_order: dict[int, set[int]] = {}
        for k, s in zip(keys, supps):
            by_order.setdefault(k, set()).add(s)
        expected = sum(
            1
            for k, s in zip(keys, supps)
            if len(by_order[k] - {s}) > 0
        )
        assert result.rows[0][0] == expected

    def test_exists_and_not_exists_partition(self, tpch_db):
        base = "select count(*) from customer where {} (select * from orders where o_custkey = c_custkey and o_totalprice > 300000)"
        total = tpch_db.execute("select count(*) from customer").rows[0][0]
        has = tpch_db.execute(base.format("exists")).rows[0][0]
        hasnt = tpch_db.execute(base.format("not exists")).rows[0][0]
        assert has + hasnt == total


class TestCrossJoin:
    def test_cross_join_cardinality(self, tpch_db):
        result = tpch_db.execute(
            "select count(*) from region, nation"
        )
        assert result.rows[0][0] == 5 * 25


class TestJoinAlgorithmEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            IndexConfig(),
            IndexConfig([Index("lineitem", ("l_orderkey",))]),
            IndexConfig([Index("lineitem", ("l_orderkey", "l_extendedprice",
                                            "l_discount", "l_shipdate"))]),
            IndexConfig([Index("orders", ("o_orderkey",)),
                         Index("lineitem", ("l_orderkey",))]),
        ],
        ids=["none", "narrow", "covering", "both-sides"],
    )
    def test_q3_style_join_same_results(self, tpch_db, config):
        sql = (
            "select o_orderkey, sum(l_extendedprice * (1 - l_discount)) as rev "
            "from orders, lineitem "
            "where o_orderkey = l_orderkey and o_orderdate < date '1994-01-01' "
            "and l_shipdate > date '1994-01-01' "
            "group by o_orderkey order by rev desc limit 7"
        )
        baseline = tpch_db.execute(sql, IndexConfig())
        other = tpch_db.execute(sql, config)
        assert [r[0] for r in baseline.rows] == [r[0] for r in other.rows]
        for a, b in zip(baseline.rows, other.rows):
            assert a[1] == pytest.approx(b[1])

"""Spill-path row materialization in ``BatchRouter.dispatch``.

The columnar contract: a :class:`ColumnarBatch` flows route → admit →
execute entirely as arrays, and per-row ``LabeledQuery`` objects are
built *only* where a spill path genuinely iterates rows. These tests
instrument ``ColumnarBatch.message_at`` (the single on-demand
materialization point) and pin down, per spill policy, exactly which
rows are allowed to materialize: none for an in-gate dispatch or a
REJECT/FALLBACK overflow, and only the parked rows when QUEUE overflow
is later drained. The batch-level ``to_messages`` cache must stay cold
throughout — dispatch never pays the full-batch materialization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BackendRegistry,
    BatchRouter,
    Blackout,
    CircuitBreaker,
    FaultInjectingBackend,
    NullBackend,
    RetryPolicy,
    SpillPolicy,
)
from repro.core.labeled_query import LabeledQuery
from repro.runtime.columnar import ColumnarBatch


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def columnar_batch(n: int, cluster: str = "east") -> ColumnarBatch:
    """An n-row batch with one route-label column (identity inverse,
    so row i's template is i — indices in assertions read literally)."""
    messages = [LabeledQuery.make(f"select {i} from t") for i in range(n)]
    batch = ColumnarBatch(messages)
    batch.add_column(
        "cluster",
        np.array([cluster] * n, dtype=object),
        np.arange(n, dtype=np.intp),
    )
    return batch


@pytest.fixture()
def materialized_rows(monkeypatch):
    """Record every row index ``message_at`` materializes."""
    calls: list[int] = []
    original = ColumnarBatch.message_at

    def counting(self, i):
        calls.append(int(i))
        return original(self, i)

    monkeypatch.setattr(ColumnarBatch, "message_at", counting)
    return calls


class TestSpillMaterialization:
    def test_fully_admitted_dispatch_materializes_nothing(
        self, materialized_rows
    ):
        registry = BackendRegistry()
        registry.register(NullBackend("DB(A)"))
        router = BatchRouter(registry, default_backend="DB(A)")
        batch = columnar_batch(8)
        report = router.dispatch("app", batch)
        assert report.admitted == 8
        assert materialized_rows == []
        assert batch._materialized is None

    def test_reject_overflow_materializes_nothing(self, materialized_rows):
        registry = BackendRegistry()
        registry.register(NullBackend("DB(A)"), max_in_flight=3)
        router = BatchRouter(registry, default_backend="DB(A)")
        batch = columnar_batch(8)
        report = router.dispatch("app", batch)
        assert report.admitted == 3
        assert report.rejected == 5
        # rejection is a disposition, not an iteration: no rows built
        assert materialized_rows == []
        assert batch._materialized is None

    def test_queue_spill_parks_rows_without_materializing(
        self, materialized_rows
    ):
        registry = BackendRegistry()
        binding = registry.register(
            NullBackend("DB(A)"),
            max_in_flight=3,
            spill=SpillPolicy.QUEUE,
            queue_capacity=16,
        )
        router = BatchRouter(registry, default_backend="DB(A)")
        batch = columnar_batch(8)
        report = router.dispatch("app", batch)
        assert report.admitted == 3
        assert report.queued == 5
        # parking stores a zero-copy slice: still nothing materialized
        assert materialized_rows == []

        # draining the parked slice touches the 5 spilled rows — and
        # only those; the admitted head (rows 0-2) is never rebuilt
        parked = binding.take_pending()
        drained = list(parked)
        assert [m.query for m in drained] == [
            f"select {i} from t" for i in range(3, 8)
        ]
        assert sorted(materialized_rows) == [3, 4, 5, 6, 7]
        # the spilled rows carry their labels despite lazy build
        assert {m.label("cluster") for m in drained} == {"east"}
        assert batch._materialized is None

    def test_fallback_spill_executes_sibling_columnar(self, materialized_rows):
        registry = BackendRegistry()
        registry.register(
            NullBackend("DB(A)"),
            max_in_flight=3,
            spill=SpillPolicy.FALLBACK,
            fallback="DB(B)",
        )
        registry.register(NullBackend("DB(B)"))
        router = BatchRouter(registry, default_backend="DB(A)")
        batch = columnar_batch(8)
        report = router.dispatch("app", batch)
        assert report.admitted == 8  # 3 on A + 5 across on B
        by_backend = {d.backend: d for d in report.decisions}
        assert by_backend["DB(B)"].spilled_from == "DB(A)"
        assert by_backend["DB(B)"].admitted == 5
        # the sibling executes the overflow via the batch's text
        # array (ColumnarSlice.queries) — still zero row objects
        assert materialized_rows == []
        assert batch._materialized is None

    def test_post_execution_failover_materializes_nothing(
        self, materialized_rows
    ):
        """A terminal execute failure fails the group over to a healthy
        sibling; learning the group's route label for candidate lookup
        must read the label column, not build row objects."""
        clock = FakeClock()
        registry = BackendRegistry()
        registry.register(
            FaultInjectingBackend(
                NullBackend("DB(A)"), [Blackout(0.0, 100.0)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=1, clock=clock, sleep=lambda _s: None
            ),
        )
        sibling = NullBackend("DB(B)")
        registry.register(sibling)
        router = BatchRouter(registry, default_backend="DB(A)")
        router.set_candidates("east", ["DB(A)", "DB(B)"])
        batch = columnar_batch(6)
        report = router.dispatch("app", batch)
        assert report.failovers == 1
        assert report.executed_ok == 6
        assert sibling.accepted == 6
        # candidate constraints were honored via the columnar label
        assert {d.backend for d in report.decisions} == {"DB(A)", "DB(B)"}
        assert materialized_rows == []
        assert batch._materialized is None

    def test_breaker_short_circuit_failover_materializes_nothing(
        self, materialized_rows
    ):
        """An open circuit hands the whole group to a sibling before
        admission — the label lookup for that hand-off is columnar."""
        clock = FakeClock()
        registry = BackendRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1000.0, clock=clock
        )
        breaker.record_failure()  # DB(A) is already tripped
        registry.register(NullBackend("DB(A)"), breaker=breaker)
        sibling = NullBackend("DB(B)")
        registry.register(sibling)
        router = BatchRouter(registry, default_backend="DB(A)")
        batch = columnar_batch(5)
        report = router.dispatch("app", batch)
        origin = report.decisions[0]
        assert origin.breaker_open and origin.spilled_to == "DB(B)"
        assert report.executed_ok == 5
        assert sibling.accepted == 5
        assert materialized_rows == []
        assert batch._materialized is None

    def test_slice_label_at_reads_columns_without_building_rows(
        self, materialized_rows
    ):
        batch = columnar_batch(4)
        head = batch.select(np.array([2, 3], dtype=np.intp))
        assert head.label_at(0, "cluster") == "east"
        assert head.label_at(1, "missing", default="d") == "d"
        assert materialized_rows == []
        assert batch._materialized is None

    def test_to_messages_after_dispatch_is_the_single_full_build(
        self, materialized_rows
    ):
        registry = BackendRegistry()
        registry.register(NullBackend("DB(A)"), max_in_flight=3)
        router = BatchRouter(registry, default_backend="DB(A)")
        batch = columnar_batch(6)
        router.dispatch("app", batch)
        assert materialized_rows == []
        labeled = batch.to_messages()  # the stage-B boundary
        assert len(labeled) == 6
        assert all(m.label("cluster") == "east" for m in labeled)
        # the bulk build goes through the fancy-index scatter, not
        # per-row message_at calls
        assert materialized_rows == []
        assert batch._materialized is not None

"""Prepared execution: the template plan cache and its guards.

Unit tests pin the :class:`~repro.minidb.plancache.PlanCache` protocol
— LRU eviction, catalog-epoch invalidation, the literal-sensitivity
bail-out, kind-mismatch and rebind-unsafe bypasses — and a hypothesis
property pins the headline contract: prepared execution is
byte-identical to per-query planning (rows, columns, plan shapes, and
failures) for every generated query, hot or cold cache.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from test_property_based import simple_select

from repro.minidb.datagen import generate_tpch_database
from repro.minidb.engine import Database
from repro.minidb.indexes import Index, IndexConfig
from repro.minidb.plancache import PlanCache, plan_shape
from repro.minidb.storage import Table
from repro.sql.params import extract_parameters
from repro.sql.parser import parse_select
from repro.workloads import generate_tpch_workload


def _tiny_db(plan_cache: PlanCache | None = None) -> Database:
    db = Database(plan_cache=plan_cache)
    db.load_table(
        Table(
            name="t",
            dtypes={"a": "int", "b": "int", "s": "str"},
            columns={
                "a": np.array([1, 2, 3, 4, 5]),
                "b": np.array([10, 20, 30, 40, 50]),
                "s": np.array(["x", "y", "x", "z", "y"]),
            },
        )
    )
    return db


class TestPlanCacheProtocol:
    def test_verification_then_hits(self):
        """A template becomes a cache hit once ``verify_bindings``
        distinct bindings have planned to the same shape."""
        db = _tiny_db(PlanCache(verify_bindings=3))
        for i in range(10):
            db.execute_prepared(f"select a from t where a = {i}")
        stats = db.plan_cache.stats()
        # 3 verification plannings (the base binding plus two more),
        # then every later distinct binding re-binds the cached plan
        assert stats["misses"] == 3
        assert stats["hits"] == 7
        assert stats["literal_sensitive_templates"] == 0

    def test_exact_repeat_binding_hits_immediately(self):
        db = _tiny_db()
        db.execute_prepared("select a from t where a = 1")
        db.execute_prepared("select a from t where a = 1")
        stats = db.plan_cache.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_rows_identical_to_unprepared(self):
        db = _tiny_db()
        queries = [
            "select a, b from t where a > 1 and s = 'x'",
            "select a, b from t where a > 3 and s = 'y'",
            "select s, sum(b) from t group by s order by s",
            "select a from t where a in (1, 3, 5) limit 2",
        ] * 3
        for sql in queries:
            want = db.execute(sql)
            got = db.execute_prepared(sql)
            assert got.columns == want.columns
            assert got.rows == want.rows
            assert got.n_rows == want.n_rows
            assert plan_shape(got.plan) == plan_shape(want.plan)

    def test_lru_eviction_is_bounded(self):
        db = _tiny_db(PlanCache(capacity=2))
        db.execute_prepared("select a from t where a = 1")
        db.execute_prepared("select b from t where b = 1")
        db.execute_prepared("select s from t where a = 1")
        stats = db.plan_cache.stats()
        assert stats["size"] == 2
        assert stats["evicted"] == 1
        # the evicted template plans fresh again (a miss, not an error)
        db.execute_prepared("select a from t where a = 2")
        assert db.plan_cache.stats()["misses"] == 4

    def test_load_table_invalidates_by_epoch(self):
        db = _tiny_db()
        sql = "select a from t where a = %d"
        for i in range(5):
            db.execute_prepared(sql % i)
        assert db.plan_cache.stats()["hits"] == 2
        epoch = db.catalog_epoch
        db.load_table(
            Table(name="u", dtypes={"c": "int"}, columns={"c": np.arange(4)})
        )
        assert db.catalog_epoch == epoch + 1
        # the stale entry is dropped on its next lookup and replanned
        result = db.execute_prepared(sql % 99)
        assert result.n_rows == 0
        stats = db.plan_cache.stats()
        assert stats["invalidated"] == 1
        assert stats["misses"] == 4  # 3 verification + 1 re-plan

    def test_literal_sensitive_template_bails_out_forever(self):
        """Shape divergence during verification marks the template
        literal-sensitive: every later binding plans fresh."""
        db = _tiny_db()
        cache = PlanCache(verify_bindings=3)
        planner = db._planner(None)
        # the second verification planning "chooses" a structurally
        # different plan (a literal-dependent optimizer would): an
        # extra Sort node the template's base shape does not have
        divergent = planner.plan(parse_select("select a from t where a = 0 order by a"))

        key = ("fp", None, (None,))
        for i, value in enumerate((1, 2, 3, 4)):
            stmt = parse_select(f"select a from t where a = {value}")
            binding = extract_parameters(stmt)
            fresh = divergent if i == 1 else planner.plan(stmt)
            cache.fetch(key, 0, stmt, binding, lambda plan=fresh: plan)

        stats = cache.stats()
        assert stats["literal_sensitive_templates"] == 1
        assert stats["literal_sensitive_skips"] == 2
        assert stats["misses"] == 4
        assert stats["hits"] == 0  # never served a possibly-wrong plan

    def test_kind_mismatch_plans_fresh(self):
        cache = PlanCache()
        db = _tiny_db()
        planner = db._planner(None)
        key = ("fp", None, (None,))
        for sql in ("select a from t where s = 'x'", "select a from t where a = 1"):
            stmt = parse_select(sql)
            binding = extract_parameters(stmt)
            cache.fetch(key, 0, stmt, binding, lambda: planner.plan(stmt))
        stats = cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_rebind_unsafe_templates_bypass_cache(self):
        db = _tiny_db()
        # the bare literal is an unaliased select item: its value is the
        # output column name, so the template must not be re-bound
        for i in range(3):
            result = db.execute_prepared(f"select {i}, a from t where a = 1")
            assert result.columns[0] == str(i)
        stats = db.plan_cache.stats()
        assert stats["uncacheable"] == 3
        assert stats["size"] == 0

    def test_subquery_interior_literals_rebind(self):
        # scalar-subquery bodies are consumed positionally, so an
        # unaliased literal item inside them is still rebind-safe and
        # the interior literal must be re-bound through the subplan
        db = _tiny_db()
        template = (
            "select count(*) as n from t "
            "where a > (select {f} * avg(a) from t)"
        )
        for factor in ("0.5", "1.0", "2.0", "0.5", "2.0"):
            sql = template.format(f=factor)
            want = db.execute(sql)
            got = db.execute_prepared(sql)
            assert got.rows == want.rows
            assert got.columns == want.columns
        stats = db.plan_cache.stats()
        assert stats["uncacheable"] == 0
        assert stats["size"] == 1
        assert stats["hits"] >= 1

    def test_distinct_limits_key_separately(self):
        db = _tiny_db()
        a = db.execute_prepared("select a from t order by a limit 2")
        b = db.execute_prepared("select a from t order by a limit 4")
        assert a.n_rows == 2 and b.n_rows == 4
        assert db.plan_cache.stats()["size"] == 2

    def test_stats_shape(self):
        stats = PlanCache(capacity=7).stats()
        for field in (
            "size",
            "capacity",
            "hits",
            "misses",
            "hit_rate",
            "invalidated",
            "evicted",
            "uncacheable",
            "literal_sensitive_templates",
            "literal_sensitive_skips",
        ):
            assert field in stats
        assert stats["capacity"] == 7 and stats["hit_rate"] == 0.0

    def test_epoch_invalidation_under_concurrent_ddl(self):
        """DDL racing prepared execution: readers hammering one cached
        template while a writer keeps bumping the catalog epoch (each
        ``load_table`` of a fresh table invalidates the hot entry on
        its next lookup) must never see an error or a wrong row — the
        stale plan is dropped and replanned transparently — and the
        epoch guard visibly invalidates along the way."""
        import threading

        db = _tiny_db()
        ddl_rounds = 40
        want = ((1,), (2,), (3,), (4,), (5,))
        errors: list[BaseException] = []
        reads = {"n": 0}
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    result = db.execute_prepared("select a from t where a >= 1")
                    assert tuple(result.rows) == want
                    reads["n"] += 1  # benign race: only needs to be > 0
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)
                    return

        def writer():
            try:
                for v in range(ddl_rounds):
                    db.load_table(
                        Table(
                            name=f"ddl_{v}",
                            dtypes={"c": "int"},
                            columns={"c": np.arange(2)},
                        )
                    )
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                stop.set()

        readers = [threading.Thread(target=reader) for _ in range(3)]
        ddl = threading.Thread(target=writer)
        for t in readers:
            t.start()
        ddl.start()
        ddl.join(30.0)
        stop.set()
        for t in readers:
            t.join(30.0)
        assert not errors, errors
        assert reads["n"] > 0
        assert db.catalog_epoch >= ddl_rounds
        # one more DDL bump, then a cold lookup: the guard must drop
        # the stale entry deterministically (the concurrent phase above
        # may or may not have caught a hit mid-invalidation)
        db.load_table(
            Table(name="ddl_last", dtypes={"c": "int"}, columns={"c": np.arange(2)})
        )
        assert tuple(db.execute_prepared("select a from t where a >= 1").rows) == want
        assert db.plan_cache.stats()["invalidated"] > 0


# -- property: prepared == unprepared ----------------------------------------

_TPCH_DB = None
_TPCH_POOL = None


def _tpch():
    global _TPCH_DB, _TPCH_POOL
    if _TPCH_DB is None:
        _TPCH_DB = generate_tpch_database(
            exec_scale=0.0005, virtual_scale=0.0005, seed=42
        )
        _TPCH_POOL = generate_tpch_workload(instances_per_template=2, seed=13)
    return _TPCH_DB, _TPCH_POOL


def _observe(run, sql):
    """One execution attempt, folded to a comparable outcome."""
    try:
        result = run(sql)
    except Exception as exc:  # noqa: BLE001 - failures must match too
        return ("error", type(exc).__name__)
    return (
        "ok",
        result.columns,
        # repr, not the tuples themselves: TPC-H aggregates over empty
        # groups yield nan, and (nan,) != (nan,) under tuple equality
        repr(result.rows),
        result.n_rows,
        plan_shape(result.plan),
    )


@st.composite
def query_stream(draw):
    """Generated SELECTs (mostly unknown tables — both paths must fail
    identically) mixed with executable TPC-H instances, with repeats so
    the prepared path exercises hot-cache re-binding."""
    _, pool = _tpch()
    base = draw(
        st.lists(
            st.one_of(simple_select(), st.sampled_from(pool)),
            min_size=1,
            max_size=8,
        )
    )
    dup = draw(st.integers(min_value=1, max_value=2))
    return draw(st.permutations(base * dup))


class TestPreparedEquivalence:
    @given(query_stream())
    @settings(max_examples=30, deadline=None)
    def test_prepared_matches_unprepared(self, queries):
        db, _ = _tpch()
        for sql in queries:
            want = _observe(db.execute, sql)
            got = _observe(db.execute_prepared, sql)
            assert got == want, sql

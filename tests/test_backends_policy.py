"""Load-aware routing: signals, policies, re-ranking, fan-out, feedback.

Bottom-up over the new layer: the :class:`LoadSignal` EWMA math, each
:class:`RoutingPolicy`'s ranking (deterministic, name-tied), the
router consulting a policy per batch with candidate sets and static
fallback, the parallel multi-backend fan-out (proven with a barrier,
not timing), the tuner's admission-headroom feedback, and the
service-level wiring (``set_routing_policy`` + ``stats()["routing"]``
+ the staged executor's dispatch feedback).
"""

from __future__ import annotations

import threading

import pytest

from repro.backends import (
    BackendRegistry,
    BatchRouter,
    CandidateView,
    CostBudgetPolicy,
    LatencyEwmaPolicy,
    LeastLoadedPolicy,
    LoadSignal,
    NullBackend,
    RoutingPolicy,
    StaticLabelPolicy,
)
from repro.backends.base import Backend, BatchResult, QueryOutcome
from repro.backends.latency import LatencyProxyBackend
from repro.core.labeled_query import LabeledQuery
from repro.errors import BackendError, ServiceError
from repro.runtime import BatchSizeTuner, StagedExecutor
from repro.runtime.metrics import RuntimeMetrics


def make_batch(n: int, cluster: str = "", query: str = "select 1"):
    labels = {"cluster": cluster} if cluster else {}
    return [LabeledQuery.make(f"{query} -- {i}", **labels) for i in range(n)]


def make_router(fanout_workers: int = 0):
    registry = BackendRegistry()
    router = BatchRouter(
        registry,
        route_label="cluster",
        metrics=RuntimeMetrics(),
        fanout_workers=fanout_workers,
    )
    return registry, router


def view(name, **kwargs) -> CandidateView:
    return CandidateView(name=name, **kwargs)


class TestLoadSignal:
    def test_latency_ewma_converges(self):
        signal = LoadSignal(smoothing=0.5)
        assert signal.latency_ewma is None
        signal.observe_execution(10, 1.0)  # 0.1 s/query
        assert signal.latency_ewma == pytest.approx(0.1)
        signal.observe_execution(10, 3.0)  # 0.3 s/query
        assert signal.latency_ewma == pytest.approx(0.2)

    def test_rejection_ewma_tracks_turned_away_fraction(self):
        signal = LoadSignal(smoothing=1.0)  # no smoothing: last value wins
        signal.observe_admission(10, 5)
        assert signal.rejection_ewma == pytest.approx(0.5)
        signal.observe_admission(10, 10)
        assert signal.rejection_ewma == pytest.approx(0.0)

    def test_degenerate_observations_ignored(self):
        signal = LoadSignal()
        signal.observe_execution(0, 1.0)
        signal.observe_execution(5, -1.0)
        signal.observe_admission(0, 0)
        assert signal.latency_ewma is None
        assert signal.rejection_ewma == 0.0
        assert signal.snapshot()["executions"] == 0

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(BackendError):
            LoadSignal(smoothing=0.0)


class TestPolicyRankings:
    def test_static_follows_mapped_else_abstains(self):
        policy = StaticLabelPolicy()
        views = [view("DB(A)"), view("DB(B)")]
        assert policy.rank("east", views, mapped="DB(B)") == ["DB(B)"]
        assert policy.rank("east", views, mapped=None) == []

    def test_least_loaded_prefers_smallest_depth(self):
        policy = LeastLoadedPolicy()
        views = [
            view("DB(A)", in_flight=3, pending=2),
            view("DB(B)", in_flight=1, pending=0),
            view("DB(C)", in_flight=0, pending=4),
        ]
        assert policy.rank("x", views) == ["DB(B)", "DB(C)", "DB(A)"]

    def test_least_loaded_ties_break_by_name(self):
        policy = LeastLoadedPolicy()
        views = [view("DB(B)"), view("DB(A)")]
        assert policy.rank("x", views) == ["DB(A)", "DB(B)"]

    def test_latency_ewma_prefers_fastest(self):
        policy = LatencyEwmaPolicy()
        views = [
            view("DB(slow)", latency_ewma=0.05),
            view("DB(fast)", latency_ewma=0.001),
        ]
        assert policy.rank("x", views)[0] == "DB(fast)"

    def test_latency_ewma_optimistic_about_unmeasured(self):
        policy = LatencyEwmaPolicy()
        views = [view("DB(known)", latency_ewma=0.01), view("DB(new)")]
        assert policy.rank("x", views)[0] == "DB(new)"

    def test_latency_ewma_rejection_weight_penalizes_saturated(self):
        policy = LatencyEwmaPolicy(rejection_weight=10.0)
        views = [
            view("DB(fast_but_full)", latency_ewma=0.010, rejection_rate=0.9),
            view("DB(slower_open)", latency_ewma=0.012, rejection_rate=0.0),
        ]
        assert policy.rank("x", views)[0] == "DB(slower_open)"
        with pytest.raises(BackendError):
            LatencyEwmaPolicy(rejection_weight=-1)

    def test_cost_budget_spends_fullest_wallet_first(self):
        policy = CostBudgetPolicy({"DB(A)": 100.0, "DB(B)": 100.0})
        views = [
            view("DB(A)", cost_units=80.0),
            view("DB(B)", cost_units=20.0),
        ]
        assert policy.rank("x", views) == ["DB(B)", "DB(A)"]

    def test_cost_budget_exhausted_ranks_after_funded(self):
        policy = CostBudgetPolicy({"DB(A)": 50.0})
        views = [
            view("DB(A)", cost_units=60.0),  # over budget
            view("DB(B)", latency_ewma=0.5),  # unbudgeted, slow
        ]
        # both fall in the exhausted/unbudgeted tier; DB(A) has no
        # latency history so it still ranks ahead of the slow one
        assert policy.rank("x", views) == ["DB(A)", "DB(B)"]
        funded = [view("DB(C)", cost_units=0.0)]
        policy2 = CostBudgetPolicy({"DB(C)": 10.0})
        assert policy2.rank("x", funded + views)[0] == "DB(C)"

    def test_cost_budget_validates(self):
        with pytest.raises(BackendError):
            CostBudgetPolicy({})
        with pytest.raises(BackendError):
            CostBudgetPolicy({"DB(A)": 0.0})


class TestRouterPolicyIntegration:
    def test_policy_rewrites_static_route(self):
        registry, router = make_router()
        a, b = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(a, max_in_flight=1)
        registry.register(b)
        router.set_route("east", "DB(A)")
        # saturate DB(A)'s gate so its depth is visible to the policy
        assert registry.get("DB(A)").admission.admit(1) == 1
        router.set_policy(LeastLoadedPolicy())
        report = router.dispatch("X", make_batch(4, "east"))
        # least-loaded overrides the static map: everything lands on B
        assert b.accepted == 4
        assert a.accepted == 0
        assert report.admitted == 4
        registry.get("DB(A)").admission.release(1)

    def test_reranked_per_batch_as_load_shifts(self):
        registry, router = make_router()
        a, b = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(a)
        registry.register(b)
        router.set_policy(LatencyEwmaPolicy())
        # price the backends by hand: A expensive, B cheap
        registry.get("DB(A)").load_signal.observe_execution(10, 1.0)
        registry.get("DB(B)").load_signal.observe_execution(10, 0.01)
        router.dispatch("X", make_batch(3, "east"))
        assert b.accepted == 3
        # load shifts: B becomes expensive, next batch re-ranks to A
        for _ in range(20):
            registry.get("DB(B)").load_signal.observe_execution(10, 50.0)
        router.dispatch("X", make_batch(3, "east"))
        assert a.accepted == 3

    def test_candidate_set_constrains_policy(self):
        registry, router = make_router()
        a, b = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(a)
        registry.register(b)
        router.set_policy(LeastLoadedPolicy())
        router.set_candidates("east", ["DB(B)"])
        router.dispatch("X", make_batch(2, "east"))
        assert b.accepted == 2 and a.accepted == 0
        assert router.candidates("east") == ("DB(B)",)
        with pytest.raises(BackendError):
            router.set_candidates("west", ["DB(missing)"])

    def test_policy_cannot_escape_candidate_set(self):
        """A ranking naming a backend outside set_candidates is
        ignored — even when it is the static table's own answer."""
        registry, router = make_router()
        a, b = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(a)
        registry.register(b)
        router.set_route("east", "DB(A)")
        router.set_candidates("east", ["DB(B)"])

        class Escape(RoutingPolicy):
            name = "escape"

            def rank(self, label, candidates, mapped=None):
                return [mapped] if mapped else []  # tries DB(A)

        router.set_policy(Escape())
        router.dispatch("X", make_batch(3, "east"), default="DB(B)")
        # the escape was ignored; the static fallback chain decided
        # (route table -> DB(A)), but the policy itself never could
        assert router.routing_snapshot()["static_fallbacks"] == 1
        assert a.accepted == 3

    def test_empty_candidate_set_falls_back_to_static(self):
        registry, router = make_router()
        a = NullBackend("DB(A)")
        registry.register(a)
        router.set_policy(LeastLoadedPolicy())
        router.set_candidates("east", [])
        # static chain still resolves via the dispatch default
        report = router.dispatch("X", make_batch(2, "east"), default="DB(A)")
        assert a.accepted == 2
        assert report.admitted == 2
        # counted per (label, batch), the same unit as a rerank
        assert router.routing_snapshot()["static_fallbacks"] == 1

    def test_empty_candidate_set_without_default_raises(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        router.set_policy(LeastLoadedPolicy())
        router.set_candidates("east", [])
        with pytest.raises(BackendError):
            router.dispatch("X", make_batch(2, "east"))

    def test_abstaining_policy_uses_static_chain(self):
        registry, router = make_router()
        a = NullBackend("DB(A)")
        registry.register(a)
        router.set_route("east", "DB(A)")

        class Abstain(RoutingPolicy):
            name = "abstain"

            def rank(self, label, candidates, mapped=None):
                return []

        router.set_policy(Abstain())
        router.dispatch("X", make_batch(3, "east"))
        assert a.accepted == 3
        snap = router.routing_snapshot()
        assert snap["policy"]["name"] == "abstain"
        # one abstention for the one label, regardless of batch size
        assert snap["static_fallbacks"] == 1
        assert snap["reranks"] == 1

    def test_policy_ranking_of_unknown_names_skipped(self):
        registry, router = make_router()
        a = NullBackend("DB(A)")
        registry.register(a)

        class Wishful(RoutingPolicy):
            name = "wishful"

            def rank(self, label, candidates, mapped=None):
                return ["DB(imaginary)", "DB(A)"]

        router.set_policy(Wishful())
        router.dispatch("X", make_batch(2, "east"))
        assert a.accepted == 2

    def test_routing_snapshot_counts_decisions(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        registry.register(NullBackend("DB(B)"))
        router.set_policy(LeastLoadedPolicy())
        for _ in range(3):
            router.dispatch("X", make_batch(2, "east"))
        snap = router.routing_snapshot()
        assert snap["reranks"] == 3
        assert snap["decisions"]["east"]  # some backend won each batch
        assert sum(snap["decisions"]["east"].values()) == 3
        assert set(snap["signals"]) == {"DB(A)", "DB(B)"}
        for signal in snap["signals"].values():
            assert "latency_ewma_seconds" in signal
            assert "rejection_rate" in signal

    def test_load_hint_seeds_latency_view(self):
        registry, router = make_router()
        fast = LatencyProxyBackend(
            NullBackend("DB(fast)"), per_query_seconds=0.001, sleep=lambda _s: None
        )
        slow = LatencyProxyBackend(
            NullBackend("DB(slow)"), per_query_seconds=0.5, sleep=lambda _s: None
        )
        registry.register(fast)
        registry.register(slow)
        assert registry.get("DB(fast)").load_view().latency_ewma == pytest.approx(
            0.001
        )
        router.set_policy(LatencyEwmaPolicy())
        # before any execution, the hint alone routes to the fast proxy
        router.dispatch("X", make_batch(2, "east"))
        assert fast.inner.accepted == 2
        assert slow.inner.accepted == 0


class _BarrierBackend(Backend):
    """Proves two execute() calls overlap: both must reach the barrier."""

    def __init__(self, name: str, barrier: threading.Barrier) -> None:
        super().__init__(name)
        self.barrier = barrier

    def execute(self, queries):
        self.barrier.wait(timeout=10.0)  # raises BrokenBarrierError when serial
        return BatchResult(
            backend=self.name,
            outcomes=tuple(QueryOutcome(query=q, ok=True) for q in queries),
        )


class TestParallelFanout:
    def test_two_groups_execute_concurrently(self, no_thread_leaks):
        barrier = threading.Barrier(2)
        registry, router = make_router(fanout_workers=4)
        registry.register(_BarrierBackend("DB(A)", barrier))
        registry.register(_BarrierBackend("DB(B)", barrier))
        batch = make_batch(2, "DB(A)") + make_batch(2, "DB(B)")
        try:
            # sequential dispatch would block forever on the first barrier
            report = router.dispatch("X", batch)
            assert report.admitted == 4
            assert {d.backend for d in report.decisions} == {"DB(A)", "DB(B)"}
        finally:
            router.close()  # hygiene: the fan-out pool must not outlive us

    def test_fanout_disabled_stays_sequential(self):
        registry, router = make_router(fanout_workers=0)
        assert router._fanout_pool() is None
        registry.register(NullBackend("DB(A)"))
        registry.register(NullBackend("DB(B)"))
        report = router.dispatch("X", make_batch(2, "DB(A)") + make_batch(2, "DB(B)"))
        assert report.admitted == 4

    def test_one_failing_group_surfaces_after_all_ran(self):
        class Boom(Backend):
            def execute(self, queries):
                raise BackendError("boom")

        registry, router = make_router(fanout_workers=4)
        ok = NullBackend("DB(B)")
        registry.register(Boom("DB(A)"))
        registry.register(ok)
        with pytest.raises(BackendError):
            router.dispatch("X", make_batch(2, "DB(A)") + make_batch(3, "DB(B)"))
        # the healthy group still executed: fan-out awaits every group
        assert ok.accepted == 3

    def test_invalid_fanout_rejected(self):
        registry = BackendRegistry()
        with pytest.raises(BackendError):
            BatchRouter(registry, fanout_workers=-1)

    def test_close_releases_pool_and_dispatch_recreates(self, no_thread_leaks):
        registry, router = make_router(fanout_workers=2)
        a, b = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(a)
        registry.register(b)
        batch = make_batch(2, "DB(A)") + make_batch(2, "DB(B)")
        router.dispatch("X", batch)
        assert router._pool is not None
        router.close()
        router.close()  # idempotent
        assert router._pool is None
        # a later multi-backend dispatch lazily recreates the pool
        router.dispatch("X", batch)
        assert a.accepted == 4 and b.accepted == 4
        router.close()


class TestTunerAdmissionFeedback:
    def test_rejections_shrink_below_latency_fit(self):
        tuner = BatchSizeTuner(
            initial=64, min_size=8, max_size=512, target_seconds=0.1
        )
        # labeling is cheap: the latency fit alone would grow the size
        tuner.observe(64, 0.001, application="X")
        grown = tuner.recommend("X")
        assert grown > 64
        # a rejecting gate drags it down despite the latency headroom
        for _ in range(8):
            tuner.observe_admission(grown, grown // 4, application="X")
            tuner.observe(tuner.recommend("X"), 0.001, application="X")
        assert tuner.recommend("X") < grown

    def test_recovery_regrows_after_gate_opens(self):
        tuner = BatchSizeTuner(initial=64, min_size=8, target_seconds=0.1)
        tuner.observe(64, 0.001, application="X")
        for _ in range(10):
            tuner.observe_admission(64, 0, application="X")
        shrunk = tuner.recommend("X")
        assert shrunk == 8
        for _ in range(20):
            tuner.observe_admission(64, 64, application="X")
            tuner.observe(shrunk, 0.001, application="X")
        assert tuner.recommend("X") > shrunk

    def test_admission_only_lane_still_backs_off(self):
        tuner = BatchSizeTuner(initial=128, min_size=8, max_growth=2.0)
        tuner.observe_admission(128, 0, application="X")
        first = tuner.recommend("X")
        # one step never shrinks past the max_growth bound, same as _fit
        assert 128 > first >= 64
        for _ in range(5):
            tuner.observe_admission(128, 0, application="X")
        assert tuner.recommend("X") < first
        lane = tuner.snapshot()["applications"]["X"]
        assert lane["rejection_ewma"] > 0.5
        assert lane["admission_samples"] == 6

    def test_degenerate_admission_observation_ignored(self):
        tuner = BatchSizeTuner(initial=32)
        assert tuner.observe_admission(0, 0, application="X") == 32

    def test_clean_admission_never_grows_the_size(self):
        """Admission observations carry no latency data: with cheap
        labeling AND clean admissions, growth stays one bounded step
        per labeling observation (not max_growth^2 per batch)."""
        tuner = BatchSizeTuner(
            initial=32, min_size=8, max_size=512, target_seconds=0.1, max_growth=2.0
        )
        tuner.observe(32, 0.0001, application="X")  # one growth step
        after_label = tuner.recommend("X")
        assert after_label == 64
        tuner.observe_admission(64, 64, application="X")
        assert tuner.recommend("X") == after_label  # no second step

    def test_snapshotless_observe_stats_keeps_admission_baseline(self):
        """Alternating calls with and without backends_snapshot must
        not re-feed the lifetime admission history as one delta."""
        tuner = BatchSizeTuner(initial=64, min_size=8)
        runtime = {"stage_seconds": {}, "queries": 0}
        history = {"DB(A)": {"admitted": 50, "rejected": 950}}
        tuner.observe_stats(runtime, application="X", backends_snapshot=history)
        after_first = tuner.snapshot()["applications"]["X"]
        size_after_first = tuner.recommend("X")
        # a snapshot-less call in between…
        tuner.observe_stats(runtime, application="X")
        # …then the same cumulative history again: delta must be zero,
        # so neither the EWMA nor the size moves a second time
        tuner.observe_stats(runtime, application="X", backends_snapshot=history)
        lane = tuner.snapshot()["applications"]["X"]
        assert lane["rejection_ewma"] == after_first["rejection_ewma"]
        assert lane["admission_samples"] == after_first["admission_samples"]
        assert tuner.recommend("X") == size_after_first

    def test_observe_stats_consumes_backend_deltas(self):
        tuner = BatchSizeTuner(initial=64, min_size=8, rejection_threshold=0.05)
        runtime = {"stage_seconds": {}, "queries": 0}
        backends = {"DB(A)": {"admitted": 0, "rejected": 0}}
        tuner.observe_stats(runtime, application="X", backends_snapshot=backends)
        # each snapshot delta: 10 admitted, 90 rejected by the gate
        for step in range(1, 7):
            backends = {
                "DB(A)": {"admitted": 10 * step, "rejected": 90 * step}
            }
            tuner.observe_stats(
                runtime, application="X", backends_snapshot=backends
            )
        assert tuner.recommend("X") < 64

    def test_observe_stats_ignores_fallback_double_counting(self):
        """A fallback hand-off re-counts 'dispatched' at the sibling;
        the admission feed must read terminal outcomes, not offers."""
        tuner = BatchSizeTuner(initial=64, min_size=8)
        runtime = {"stage_seconds": {}, "queries": 0}
        tuner.observe_stats(
            runtime,
            application="X",
            backends_snapshot={
                "DB(A)": {"dispatched": 0, "admitted": 0, "rejected": 0},
                "DB(B)": {"dispatched": 0, "admitted": 0, "rejected": 0},
            },
        )
        # 10 offered: 5 admitted at origin, 5 spilled and all admitted
        # by the sibling — dispatched sums to 15 but nothing was lost
        for step in range(1, 5):
            tuner.observe_stats(
                runtime,
                application="X",
                backends_snapshot={
                    "DB(A)": {
                        "dispatched": 10 * step,
                        "admitted": 5 * step,
                        "rejected": 0,
                    },
                    "DB(B)": {
                        "dispatched": 5 * step,
                        "admitted": 5 * step,
                        "rejected": 0,
                    },
                },
            )
        assert tuner.recommend("X") == 64  # zero real rejection, no shrink
        assert tuner.snapshot()["applications"]["X"]["rejection_ewma"] == 0.0

    def test_invalid_rejection_threshold(self):
        with pytest.raises(ServiceError):
            BatchSizeTuner(rejection_threshold=0.0)
        with pytest.raises(ServiceError):
            BatchSizeTuner(rejection_threshold=1.0)


class TestExecutorDispatchFeedback:
    def test_feedback_called_per_batch(self):
        seen = []
        executor = StagedExecutor(
            lambda app, item: item * 2,
            lambda app, staged: staged + 1,
            dispatch_feedback=lambda app, result: seen.append((app, result)),
        )
        with executor:
            assert executor.submit("X", 3).result(timeout=5.0) == 7
            assert executor.submit("X", 5).result(timeout=5.0) == 11
        assert seen == [("X", 7), ("X", 11)]

    def test_feedback_failure_counted_not_raised(self):
        def bad_feedback(app, result):
            raise RuntimeError("telemetry down")

        executor = StagedExecutor(
            lambda app, item: item,
            lambda app, staged: staged,
            dispatch_feedback=bad_feedback,
        )
        with executor:
            assert executor.submit("X", 1).result(timeout=5.0) == 1
        assert executor.stats()["lanes"]["X"]["feedback_errors"] == 1
        assert executor.stats()["lanes"]["X"]["dispatch_errors"] == 0


class TestServiceRoutingPolicy:
    @pytest.fixture()
    def service(self):
        from repro import QuercService

        service = QuercService()
        service.register_backend(NullBackend("DB(A)"), max_in_flight=1)
        service.register_backend(NullBackend("DB(B)"))
        service.add_application("X", backend="DB(A)")
        return service

    def test_set_routing_policy_and_stats(self, service):
        policy = service.set_routing_policy(
            LeastLoadedPolicy(), candidates={"east": ["DB(A)", "DB(B)"]}
        )
        assert service.router.policy is policy
        routing = service.stats()["routing"]
        assert routing["policy"]["name"] == "least_loaded"
        assert routing["candidates"] == {"east": ["DB(A)", "DB(B)"]}
        assert set(routing["signals"]) == {"DB(A)", "DB(B)"}

    def test_clear_policy_restores_static(self, service):
        service.set_routing_policy(LeastLoadedPolicy())
        service.set_routing_policy(None)
        assert service.stats()["routing"]["policy"] == {"name": "static"}

    def test_routed_batch_follows_policy(self, service):
        from repro.workloads import QueryLogRecord
        from repro.workloads.stream import StreamBatch

        # saturate DB(A) so least-loaded prefers DB(B) over the binding
        assert service.backends.get("DB(A)").admission.admit(1) == 1
        service.set_routing_policy(LeastLoadedPolicy())
        batch = StreamBatch(
            application="X",
            records=[QueryLogRecord(query="select 1")],
            time_step=0,
        )
        _, report = service.process_routed(batch)
        assert report is not None
        assert report.decisions[0].backend == "DB(B)"

"""The serving tier end to end: equivalence, backpressure, edge sheds.

Three contracts, each against a real ``QuercServer`` on a loopback
socket with real MiniDB backends behind latency proxies (injected
no-op sleep — nothing in here waits on wall clock):

* **byte-identical equivalence** — a fleet of asyncio clients
  submitting interleaved multi-tenant batches gets, frame for frame,
  exactly the wire bytes the library's ``process_routed_concurrent``
  would serialize for the same batches: the network tier adds
  transport, never drift;
* **bounded-bridge backpressure** — with a deliberately starved stage
  pool (depth 1, one worker per stage) and small per-session windows,
  pipelined clients must all complete correctly: the bridge parks
  coroutines, not threads, and loses no wakeups;
* **edge admission** — a shed frame is answered ``SERVER_BUSY``
  *before* it consumes anything: no executor lane, no backend
  ``execute``, no admission slot. Verified against a counting backend
  and the executor's own stats, including the token-bucket rate gate
  driven by a fake clock.

Every test runs under ``run_async`` (conftest): leaked asyncio tasks
or pool threads fail the test.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.backends import (
    BatchResult,
    LatencyProxyBackend,
    MiniDBBackend,
    NullBackend,
    QueryOutcome,
)
from repro.core import QuercService, QueryClassifier
from repro.core.labeler import ClassifierLabeler
from repro.errors import ServerReplyError
from repro.minidb import materialize_log_tables
from repro.ml.forest import RandomizedForestClassifier
from repro.server import AsyncQuercClient, EdgeAdmission, QuercServer
from repro.server.protocol import jsonable, labeled_to_wire, report_to_wire
from repro.sql.normalizer import template_fingerprint
from repro.workloads import QueryLogRecord, StreamBatch

APPS = ("tenant-a", "tenant-b", "tenant-c", "tenant-d")
LABELS = ("cluster", "tier")
BATCH = 5
BATCHES_PER_APP = 4


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class CountingBackend(NullBackend):
    """Counts ``execute`` calls — the no-slot-consumed witness."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.execute_calls = 0
        self.executed_queries = 0

    def execute(self, queries):
        self.execute_calls += 1
        self.executed_queries += len(queries)
        return BatchResult(
            backend=self.name,
            outcomes=tuple(QueryOutcome(query=q, ok=True) for q in queries),
        )


# -- topology -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serving_queries(snowsim_records):
    return [r.query for r in snowsim_records[:400]]


@pytest.fixture(scope="module")
def serving_classifiers(fitted_bow, serving_queries):
    """Deterministic pre-trained classifiers (labels are a pure
    function of the template fingerprint, so both services and every
    run agree)."""
    vectors = fitted_bow.transform(serving_queries)
    fps = [template_fingerprint(q) for q in serving_queries]
    out = []
    for i, name in enumerate(LABELS):
        labels = [(int(fp[:8], 16) + i) % 4 for fp in fps]
        labeler = ClassifierLabeler(
            RandomizedForestClassifier(n_trees=6, max_depth=6, seed=i)
        )
        labeler.fit(vectors, labels)
        out.append(
            QueryClassifier(name, fitted_bow, labeler, embedder_name="bow-shared")
        )
    return out


@pytest.fixture(scope="module")
def serving_databases(serving_queries):
    return {
        "a": materialize_log_tables(serving_queries, rows_per_table=4),
        "b": materialize_log_tables(serving_queries, rows_per_table=4),
    }


def build_service(databases, embedder, classifiers) -> QuercService:
    """The two-backend multi-tenant topology, fresh per use.

    The latency proxies carry real per-batch/per-query charges but an
    injected no-op sleep — structure without wall-clock waits.
    """
    service = QuercService()
    for tag, database in databases.items():
        service.register_backend(
            LatencyProxyBackend(
                MiniDBBackend(f"DB({tag})", database),
                per_batch_seconds=0.01,
                per_query_seconds=0.002,
                sleep=lambda _s: None,
            )
        )
    service.embedders.register("bow-shared", embedder)
    backends = sorted(f"DB({tag})" for tag in databases)
    for i, app in enumerate(APPS):
        service.add_application(app, backend=backends[i % len(backends)])
        for classifier in classifiers:
            service.attach_classifier(app, classifier)
    return service


def build_batches(queries) -> list[StreamBatch]:
    """Interleaved multi-tenant batches with deterministic timestamps;
    the *same* objects drive the library run and the wire run."""
    batches = []
    step = 0
    for round_no in range(BATCHES_PER_APP):
        for app_no, app in enumerate(APPS):
            base = (round_no * len(APPS) + app_no) * BATCH
            records = tuple(
                QueryLogRecord(
                    query=queries[(base + j) % len(queries)],
                    timestamp=float(step * BATCH + j),
                )
                for j in range(BATCH)
            )
            batches.append(
                StreamBatch(application=app, time_step=step, records=records)
            )
            step += 1
    return batches


# -- byte-identical comparison ------------------------------------------------------


def canonical(labeled_wire, report_wire) -> str:
    return json.dumps(
        {"labeled": labeled_wire, "report": report_wire},
        sort_keys=True,
        separators=(",", ":"),
    )


def library_wire(result) -> str:
    """A library-path result serialized exactly as the server would."""
    labeled, report = result
    return canonical(
        jsonable([labeled_to_wire(m) for m in labeled]),
        jsonable(report_to_wire(report)),
    )


def client_wire(batch_result) -> str:
    return canonical(batch_result.labeled, batch_result.report)


# -- tests --------------------------------------------------------------------------


class TestWireEquivalence:
    def test_concurrent_sessions_match_library_path_byte_for_byte(
        self,
        serving_databases,
        serving_queries,
        fitted_bow,
        serving_classifiers,
        run_async,
    ):
        """8 asyncio clients across 4 tenants, interleaved submits: every
        result frame equals the library run's serialization of the same
        batch."""
        batches = build_batches(serving_queries)
        library = build_service(
            serving_databases, fitted_bow, serving_classifiers
        )
        try:
            expected = [
                library_wire(r)
                for r in library.process_routed_concurrent(batches)
            ]
        finally:
            library.close()

        served = build_service(
            serving_databases, fitted_bow, serving_classifiers
        )
        n_clients = 8
        assignments: list[list[int]] = [[] for _ in range(n_clients)]
        for index, batch in enumerate(batches):
            # two clients per app, alternating — same-app batches
            # interleave across sessions
            app_no = APPS.index(batch.application)
            client_no = app_no * 2 + (index // len(APPS)) % 2
            assignments[client_no].append(index)

        async def client_flow(client_no: int, address, results: dict):
            app = APPS[client_no // 2]
            async with AsyncQuercClient(*address, application=app) as client:
                futures = []
                for index in assignments[client_no]:
                    batch = batches[index]
                    future = await client.submit_future(
                        [r.query for r in batch.records],
                        timestamps=[r.timestamp for r in batch.records],
                    )
                    futures.append((index, future))
                for index, future in futures:
                    results[index] = await future

        async def scenario():
            server = QuercServer(served)
            await server.start()
            results: dict[int, object] = {}
            try:
                await asyncio.gather(
                    *(
                        client_flow(i, server.address, results)
                        for i in range(n_clients)
                    )
                )
            finally:
                await server.stop()
            return results

        results = run_async(scenario())
        assert sorted(results) == list(range(len(batches)))
        for index, batch_result in results.items():
            assert client_wire(batch_result) == expected[index], (
                f"batch {index} drifted between wire and library"
            )
        stats = served.stats()["server"]
        assert stats["sessions"] == n_clients
        assert stats["queries"] == len(batches) * BATCH
        assert stats["frames_shed"] == 0
        served.close()

    def test_starved_pool_small_windows_all_batches_complete(
        self,
        serving_databases,
        serving_queries,
        fitted_bow,
        serving_classifiers,
        run_async,
    ):
        """The bounded bridge under maximum contention: stage pool of
        one worker per stage, lane depth 1, per-session window 2 — six
        pipelined clients on one tenant all drain correctly."""
        service = build_service(
            serving_databases, fitted_bow, serving_classifiers
        )
        queries = serving_queries[:60]
        per_client = 6

        async def client_flow(client_no: int, address, results: list):
            async with AsyncQuercClient(
                *address, application="tenant-a"
            ) as client:
                futures = []
                for j in range(per_client):
                    base = (client_no * per_client + j) * 3
                    future = await client.submit_future(
                        [queries[(base + k) % len(queries)] for k in range(3)]
                    )
                    futures.append(future)
                for future in futures:
                    results.append(await future)

        async def scenario():
            server = QuercServer(
                service,
                queue_depth=1,
                label_workers=1,
                dispatch_workers=1,
                max_inflight_per_session=2,
            )
            await server.start()
            results: list = []
            try:
                await asyncio.gather(
                    *(
                        client_flow(i, server.address, results)
                        for i in range(6)
                    )
                )
            finally:
                await server.stop()
            return results

        results = run_async(scenario())
        assert len(results) == 6 * per_client
        for batch_result in results:
            assert len(batch_result.labeled) == 3
            assert all(
                set(LABELS) <= set(row["labels"]) for row in batch_result.labeled
            )
            assert batch_result.report["admitted"] == 3
        lanes = service.stats()["executor"]["lanes"]
        assert lanes["tenant-a"]["submitted"] == 6 * per_client
        service.close()


class TestEdgeAdmission:
    def _tiny_service(self) -> tuple[QuercService, CountingBackend]:
        service = QuercService()
        backend = CountingBackend("DB(edge)")
        service.register_backend(backend)
        service.add_application("edge-app", backend="DB(edge)")
        return service, backend

    def test_shed_frame_consumes_no_lane_and_no_backend_slot(self, run_async):
        service, backend = self._tiny_service()

        async def scenario():
            server = QuercServer(
                service, edge=EdgeAdmission(max_in_flight_queries=4)
            )
            await server.start()
            try:
                async with AsyncQuercClient(
                    *server.address, application="edge-app"
                ) as client:
                    # 8 > 4: shed whole, before anything downstream
                    with pytest.raises(ServerReplyError) as exc_info:
                        await client.run_batch(
                            [f"select {i}" for i in range(8)]
                        )
                    assert exc_info.value.code == "SERVER_BUSY"
                    assert exc_info.value.request_id == 1
                    mid_stats = server.stats()
                    # a frame the gate can take whole still flows
                    ok = await client.run_batch(
                        [f"select {i}" for i in range(3)]
                    )
                    assert len(ok.labeled) == 3
                return mid_stats
            finally:
                await server.stop()

        mid_stats = run_async(scenario())
        # at shed time: nothing reached the executor or the backend
        assert mid_stats["queries"] == 0
        assert mid_stats["queries_shed"] == 8
        assert mid_stats["frames_shed"] == 1
        assert mid_stats["edge"]["queries_shed"] == 8
        # the backend saw only the admitted 3-query frame, ever
        assert backend.execute_calls == 1
        assert backend.executed_queries == 3
        # no lane existed for the shed frame; one for the admitted one
        lanes = service.stats()["executor"]["lanes"]
        assert lanes["edge-app"]["submitted"] == 1
        # the service-level view agrees
        stats = service.stats()["server"]
        assert stats["queries_shed"] == 8
        assert stats["queries"] == 3
        service.close()

    def test_inflight_gate_releases_when_results_stream(self, run_async):
        service, backend = self._tiny_service()

        async def scenario():
            server = QuercServer(
                service, edge=EdgeAdmission(max_in_flight_queries=4)
            )
            await server.start()
            try:
                async with AsyncQuercClient(
                    *server.address, application="edge-app"
                ) as client:
                    # three sequential 4-query frames: each fills the
                    # gate and must release it for the next
                    for _ in range(3):
                        result = await client.run_batch(
                            [f"select {i}" for i in range(4)]
                        )
                        assert len(result.labeled) == 4
            finally:
                await server.stop()

        run_async(scenario())
        assert backend.executed_queries == 12
        assert service.stats()["server"]["frames_shed"] == 0
        service.close()

    def test_rate_gate_sheds_on_fake_clock_and_refills(self, run_async):
        service, backend = self._tiny_service()
        clock = FakeClock()

        async def scenario():
            server = QuercServer(
                service,
                edge=EdgeAdmission(
                    queries_per_second=5.0, burst=5.0, clock=clock
                ),
            )
            await server.start()
            try:
                async with AsyncQuercClient(
                    *server.address, application="edge-app"
                ) as client:
                    batch = [f"select {i}" for i in range(5)]
                    ok = await client.run_batch(batch)  # burst spent
                    assert len(ok.labeled) == 5
                    with pytest.raises(ServerReplyError) as exc_info:
                        await client.run_batch(batch)  # bucket empty
                    assert exc_info.value.code == "SERVER_BUSY"
                    clock.advance(1.0)  # 5 tokens back — no sleeping
                    again = await client.run_batch(batch)
                    assert len(again.labeled) == 5
            finally:
                await server.stop()

        run_async(scenario())
        assert backend.executed_queries == 10
        stats = service.stats()["server"]
        assert stats["frames_shed"] == 1
        assert stats["queries_shed"] == 5
        service.close()

"""Unit tests for the labeled-query data model."""

import pytest

from repro.core import LabeledQuery


class TestLabeledQuery:
    def test_make_and_access(self):
        message = LabeledQuery.make("select 1", user="alice", ts=5)
        assert message.query == "select 1"
        assert message.label("user") == "alice"
        assert message.label("missing") is None
        assert message.label("missing", "dflt") == "dflt"

    def test_with_labels_returns_new_instance(self):
        a = LabeledQuery.make("q", user="alice")
        b = a.with_labels(cluster="c1")
        assert a.label("cluster") is None
        assert b.label("cluster") == "c1"
        assert b.label("user") == "alice"

    def test_with_labels_overrides(self):
        a = LabeledQuery.make("q", user="alice")
        b = a.with_labels(user="bob")
        assert b.label("user") == "bob"

    def test_labels_are_immutable(self):
        message = LabeledQuery.make("q", user="alice")
        with pytest.raises(TypeError):
            message.labels["user"] = "eve"

    def test_has_label(self):
        message = LabeledQuery.make("q", a=1)
        assert message.has_label("a")
        assert not message.has_label("b")

    def test_as_tuple_sorted_by_name(self):
        message = LabeledQuery.make("q", zeta=2, alpha=1)
        assert message.as_tuple() == ("q", 1, 2)

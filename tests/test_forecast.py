"""The forecasting layer: estimators, blueprints, planner, provisioner.

Everything runs on injected logical clocks — forecasts and plans are
pure functions of the observation schedule, so these tests replay
identically and never sleep. The integration tests close the loop
through :class:`~repro.core.service.QuercService`: the provisioner
rides the staged executor's dispatch-feedback path, plans on its
interval, applies through the live resize hooks, and publishes the
blueprint diff via ``stats()["forecast"]``.
"""

from __future__ import annotations

import pytest

from repro.backends import NullBackend
from repro.core.service import QuercService
from repro.errors import ServiceError
from repro.forecast import (
    AdmissionPlan,
    ArrivalRateForecaster,
    Blueprint,
    BlueprintDiff,
    HoltForecaster,
    PredictiveProvisioner,
    ProvisioningPlanner,
    TemplateMixForecaster,
)
from repro.workloads.logs import QueryLogRecord
from repro.workloads.stream import StreamBatch


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- estimators ---------------------------------------------------------------


class TestHoltForecaster:
    def test_constant_series_converges_to_level(self):
        h = HoltForecaster(alpha=0.5, beta=0.3)
        for _ in range(50):
            h.observe(42.0)
        assert h.forecast(1.0) == pytest.approx(42.0, abs=1e-6)
        assert h.trend == pytest.approx(0.0, abs=1e-6)

    def test_linear_ramp_extrapolates_ahead(self):
        h = HoltForecaster(alpha=0.6, beta=0.4)
        for v in range(0, 100, 10):
            h.observe(float(v))
        one = h.forecast(1.0)
        three = h.forecast(3.0)
        assert one > 90.0  # ahead of the last observation
        assert three > one  # the trend term keeps extrapolating

    def test_forecast_never_negative(self):
        h = HoltForecaster(alpha=0.9, beta=0.9)
        for v in [100.0, 50.0, 10.0, 0.0, 0.0]:
            h.observe(v)
        assert h.forecast(10.0) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ServiceError):
            HoltForecaster(alpha=0.0)
        with pytest.raises(ServiceError):
            HoltForecaster(beta=1.5)


class TestArrivalRateForecaster:
    def test_steady_rate_is_learned(self):
        clock = FakeClock()
        f = ArrivalRateForecaster(window_seconds=1.0, clock=clock)
        for step in range(20):
            clock.now = float(step)
            f.observe(50, now=clock.now)
        assert f.forecast(now=20.0) == pytest.approx(50.0, rel=0.05)

    def test_ramp_forecast_leads_the_last_bucket(self):
        f = ArrivalRateForecaster(window_seconds=1.0, clock=lambda: 0.0)
        for step in range(12):
            f.observe(10 * (step + 1), now=float(step))
        assert f.forecast(now=12.0) > 110.0

    def test_idle_gaps_decay_the_forecast(self):
        f = ArrivalRateForecaster(
            window_seconds=1.0, alpha=0.5, beta=0.0, clock=lambda: 0.0
        )
        for step in range(5):
            f.observe(100, now=float(step))
        busy = f.forecast(now=5.0)
        idle = f.forecast(now=25.0)  # 20 empty buckets feed zeros
        assert idle < busy / 100.0

    def test_deterministic_replay(self):
        def run() -> list[float]:
            f = ArrivalRateForecaster(window_seconds=0.5, clock=lambda: 0.0)
            out = []
            for step in range(30):
                f.observe(step % 7, now=step * 0.25)
                out.append(f.forecast(now=step * 0.25))
            return out

        assert run() == run()

    def test_open_bucket_partial_rate_before_first_close(self):
        f = ArrivalRateForecaster(window_seconds=10.0, clock=lambda: 0.0)
        f.observe(20, now=0.0)
        assert f.forecast(now=2.0) == pytest.approx(10.0)

    def test_negative_count_rejected(self):
        f = ArrivalRateForecaster(clock=lambda: 0.0)
        with pytest.raises(ServiceError):
            f.observe(-1, now=0.0)


class TestTemplateMixForecaster:
    def test_mix_is_a_distribution(self):
        m = TemplateMixForecaster(alpha=0.4)
        m.observe({"a": 3, "b": 1})
        m.observe({"a": 1, "b": 1, "c": 2})
        mix = m.mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert set(mix) == {"a", "b", "c"}

    def test_absent_categories_decay(self):
        m = TemplateMixForecaster(alpha=0.5)
        m.observe({"old": 10})
        for _ in range(10):
            m.observe({"new": 10})
        assert m.share("new") > 0.99
        assert m.share("old") < 0.01

    def test_top_is_sorted_and_bounded(self):
        m = TemplateMixForecaster(alpha=1.0)
        m.observe({"a": 5, "b": 3, "c": 2})
        assert [k for k, _ in m.top(2)] == ["a", "b"]

    def test_key_set_is_bounded(self):
        m = TemplateMixForecaster(alpha=0.9, max_keys=8)
        for i in range(100):
            m.observe({f"t{i}": 1})
        assert len(m.mix()) <= 8

    def test_empty_observation_ignored(self):
        m = TemplateMixForecaster()
        m.observe({})
        assert m.mix() == {}
        assert m.batches_observed == 0


# -- blueprints ---------------------------------------------------------------


class TestBlueprintDiff:
    def test_noop_when_blueprints_match(self):
        bp = Blueprint(
            label_workers=2,
            dispatch_workers=4,
            admission={"db": AdmissionPlan(max_in_flight=4)},
            candidates={"0": ("db",)},
        )
        diff = BlueprintDiff(current=bp, recommended=bp)
        assert diff.is_noop
        assert diff.changes == []

    def test_changes_are_itemized_per_knob(self):
        cur = Blueprint(
            label_workers=2,
            dispatch_workers=4,
            admission={"db": AdmissionPlan(max_in_flight=4, rate=10.0, burst=10.0)},
            candidates={"0": ("db",)},
        )
        rec = Blueprint(
            label_workers=3,
            dispatch_workers=3,
            admission={"db": AdmissionPlan(max_in_flight=8, rate=10.0, burst=10.0)},
            candidates={"0": ("db", "db2")},
        )
        diff = BlueprintDiff(current=cur, recommended=rec, generated_at=7.0)
        fields = {(c["kind"], c["target"], c["field"]) for c in diff.changes}
        assert fields == {
            ("pool", "executor", "label_workers"),
            ("pool", "executor", "dispatch_workers"),
            ("admission", "db", "max_in_flight"),
            ("candidates", "0", "backends"),
        }
        d = diff.to_dict()
        assert d["generated_at"] == 7.0
        assert d["is_noop"] is False
        assert d["current"]["label_workers"] == 2
        assert d["recommended"]["candidates"]["0"] == ["db", "db2"]


# -- planner ------------------------------------------------------------------


class TestProvisioningPlanner:
    def _current(self) -> Blueprint:
        return Blueprint(
            label_workers=4,
            dispatch_workers=4,
            admission={
                "fast": AdmissionPlan(max_in_flight=8, rate=100.0, burst=200.0),
                "slow": AdmissionPlan(),
            },
            candidates={"0": ("fast",)},
        )

    def test_budget_splits_by_stage_demand(self):
        planner = ProvisioningPlanner(thread_budget=8, headroom=1.0)
        diff = planner.plan(
            predicted_qps=100.0,
            label_cost=0.01,  # demand 1 worker
            dispatch_cost=0.03,  # demand 3 workers
            current=self._current(),
        )
        rec = diff.recommended
        assert rec.label_workers + rec.dispatch_workers == 8
        assert rec.dispatch_workers == 3 * rec.label_workers

    def test_unbudgeted_pools_size_to_demand(self):
        planner = ProvisioningPlanner(headroom=1.0)
        diff = planner.plan(
            predicted_qps=100.0,
            label_cost=0.025,
            dispatch_cost=0.071,
            current=self._current(),
        )
        assert diff.recommended.label_workers == 3  # ceil(2.5)
        assert diff.recommended.dispatch_workers == 8  # ceil(7.1)

    def test_window_marks_floor_the_recommendation(self):
        """A bad (low) forecast cannot shrink below what the last
        interval measurably used — the reactive backstop."""
        planner = ProvisioningPlanner(headroom=1.0)
        diff = planner.plan(
            predicted_qps=0.0,
            label_cost=0.01,
            dispatch_cost=0.01,
            current=self._current(),
            window={
                "window_max_label_active": 3,
                "window_max_dispatch_active": 2,
            },
        )
        assert diff.recommended.label_workers == 3
        assert diff.recommended.dispatch_workers == 2

    def test_admission_scales_configured_gates_only(self):
        planner = ProvisioningPlanner(headroom=1.0)
        diff = planner.plan(
            predicted_qps=50.0,
            label_cost=0.001,
            dispatch_cost=0.1,
            current=self._current(),
            backend_weights={"fast": 1.0, "slow": 0.0},
        )
        fast = diff.recommended.admission["fast"]
        assert fast.rate == pytest.approx(50.0)
        assert fast.burst == pytest.approx(100.0)  # 2x ratio preserved
        assert fast.max_in_flight == 5  # ceil(50 * 0.1)
        # the unlimited gate is left unlimited: the planner never
        # imposes a bound the operator didn't configure
        assert diff.recommended.admission["slow"] == AdmissionPlan()

    def test_hot_labels_widen_candidates(self):
        planner = ProvisioningPlanner(headroom=1.0, hot_share=0.5)
        diff = planner.plan(
            predicted_qps=10.0,
            label_cost=0.001,
            dispatch_cost=0.001,
            current=self._current(),
            mix={"0": 0.8, "1": 0.2},
            all_backends=["fast", "slow"],
        )
        assert diff.recommended.candidates["0"] == ("fast", "slow")
        assert "1" not in diff.recommended.candidates

    def test_validation(self):
        with pytest.raises(ServiceError):
            ProvisioningPlanner(thread_budget=1)
        with pytest.raises(ServiceError):
            ProvisioningPlanner(headroom=0.5)
        with pytest.raises(ServiceError):
            ProvisioningPlanner().plan(
                predicted_qps=-1.0,
                label_cost=0.0,
                dispatch_cost=0.0,
                current=Blueprint(label_workers=1, dispatch_workers=1),
            )


# -- provisioner + service ----------------------------------------------------


def _records(n: int, cluster: str) -> list[QueryLogRecord]:
    return [
        QueryLogRecord(
            query=f"select {i} from {cluster}_t",
            user=f"u{i % 3}",
            account="acct",
            cluster=cluster,
            timestamp=float(i),
        )
        for i in range(n)
    ]


def _batches(app: str, n_batches: int, per_batch: int = 8) -> list[StreamBatch]:
    records = _records(n_batches * per_batch, app.lower())
    return [
        StreamBatch(
            application=app,
            records=records[i * per_batch : (i + 1) * per_batch],
            time_step=i,
        )
        for i in range(n_batches)
    ]


class TestPredictiveProvisionerIntegration:
    @pytest.fixture(autouse=True)
    def _hygiene(self, no_thread_leaks):
        yield

    def _service(self) -> QuercService:
        service = QuercService()
        service.register_backend(
            NullBackend("DB(X)"), max_in_flight=16, rate=500.0
        )
        service.register_backend(NullBackend("DB(Y)"))
        service.add_application("X", backend="DB(X)")
        service.add_application("Y", backend="DB(Y)")
        return service

    def _provisioned(
        self, service: QuercService, clock: FakeClock, **kwargs
    ) -> PredictiveProvisioner:
        kwargs.setdefault("planner", ProvisioningPlanner(thread_budget=6))
        kwargs.setdefault("interval_seconds", 0.05)
        provisioner = PredictiveProvisioner(clock=clock, **kwargs)
        # logical time advances with every observation, so planning
        # intervals elapse deterministically during the staged run
        original = provisioner.observe_result

        def advancing(application, result):
            clock.advance(0.02)
            original(application, result)

        provisioner.observe_result = advancing
        service.set_provisioner(provisioner)
        return provisioner

    def test_feedback_path_plans_and_publishes_diff(self):
        service = self._service()
        clock = FakeClock()
        self._provisioned(service, clock)
        batches = _batches("X", 8) + _batches("Y", 4)
        service.process_routed_concurrent(batches)
        forecast = service.stats()["forecast"]
        assert forecast["plans"] >= 1
        assert forecast["apply_errors"] == 0
        assert set(forecast["tenants"]) == {"X", "Y"}
        diff = forecast["last_diff"]
        assert diff is not None
        assert diff["current"]["label_workers"] >= 1
        assert (
            diff["recommended"]["label_workers"]
            + diff["recommended"]["dispatch_workers"]
            == 6
        )
        # every served query fed the tenant's arrival forecaster
        assert forecast["tenants"]["X"]["total_observed"] == 8 * 8
        assert forecast["tenants"]["Y"]["total_observed"] == 4 * 8
        # no classifier is deployed, so batches carry no route label
        # and the mix stays empty — labels appear once models deploy
        assert forecast["mix"]["batches_observed"] == 0

    def test_observe_result_feeds_label_mix_when_labeled(self):
        provisioner = PredictiveProvisioner(clock=FakeClock())
        from repro.core.labeled_query import LabeledQuery

        labeled = [
            LabeledQuery.make("select 1", cluster="east"),
            LabeledQuery.make("select 2", cluster="east"),
            LabeledQuery.make("select 3", cluster="west"),
        ]
        provisioner.observe_result("X", (labeled, None))
        snap = provisioner.snapshot()
        assert snap["mix"]["batches_observed"] == 1
        assert snap["mix"]["top"][0][0] == "east"

    def test_auto_apply_resizes_the_live_executor(self):
        service = self._service()
        clock = FakeClock()
        self._provisioned(service, clock)
        service.process_routed_concurrent(
            _batches("X", 10), label_workers=2, dispatch_workers=2
        )
        pool = service.stats()["executor"]["pool"]
        assert pool["resizes"] >= 1
        assert pool["label_workers"] + pool["dispatch_workers"] == 6

    def test_advisor_mode_never_touches_the_deployment(self):
        service = self._service()
        clock = FakeClock()
        self._provisioned(service, clock, auto_apply=False)
        service.process_routed_concurrent(
            _batches("X", 10), label_workers=2, dispatch_workers=2
        )
        stats = service.stats()
        assert stats["forecast"]["plans"] >= 1
        assert stats["forecast"]["applies"] == 0
        pool = stats["executor"]["pool"]
        assert pool["resizes"] == 0
        assert pool["label_workers"] == 2
        assert pool["dispatch_workers"] == 2
        # the diff is still published for audit
        assert stats["forecast"]["last_diff"] is not None

    def test_results_identical_with_and_without_provisioner(self):
        batches = _batches("X", 8) + _batches("Y", 6)
        plain = self._service()
        want = plain.process_routed_concurrent(batches)
        provisioned = self._service()
        self._provisioned(provisioned, FakeClock())
        got = provisioned.process_routed_concurrent(batches)
        assert len(got) == len(want)
        for (got_labeled, _), (want_labeled, _) in zip(got, want):
            assert [m.query for m in got_labeled] == [
                m.query for m in want_labeled
            ]
            assert [m.labels for m in got_labeled] == [
                m.labels for m in want_labeled
            ]

    def test_admission_resize_is_applied_to_gates(self):
        service = self._service()
        clock = FakeClock()
        self._provisioned(service, clock)
        service.process_routed_concurrent(_batches("X", 12))
        snap = service.backends.get("DB(X)").admission.snapshot()
        assert snap["resizes"] >= 1
        assert snap["rate"] is not None  # rate-limited stays rate-limited
        # the unlimited sibling gained no bounds
        other = service.backends.get("DB(Y)").admission.snapshot()
        assert other["max_in_flight"] is None and other["rate"] is None

    def test_detach_stops_observation(self):
        service = self._service()
        clock = FakeClock()
        provisioner = self._provisioned(service, clock)
        service.set_provisioner(None)
        service.process_routed_concurrent(_batches("X", 4))
        assert service.stats()["forecast"] is None
        assert provisioner.snapshot()["plans"] == 0

"""Unit tests for the experiment harness plumbing (config, reporting)."""

import pytest

from repro.errors import ReproError
from repro.experiments.config import (
    FULL,
    QUICK,
    SECONDS_PER_COST_UNIT,
    get_scale,
)
from repro.experiments.reporting import (
    PaperComparison,
    render_series,
    render_table,
)


class TestConfig:
    def test_presets_resolve(self):
        assert get_scale("quick") is QUICK
        assert get_scale("full") is FULL

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert get_scale() is FULL

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert get_scale("quick") is QUICK

    def test_unknown_scale_raises(self):
        with pytest.raises(ReproError):
            get_scale("gigantic")

    def test_full_preset_is_paper_sized(self):
        assert FULL.tpch_workload_size == 38 * 22
        assert FULL.cv_folds == 10  # the paper's protocol

    def test_calibration_positive(self):
        assert SECONDS_PER_COST_UNIT > 0


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_render_series_columns(self):
        out = render_series(
            "t", "x", [1, 2], {"a": [10, 20], "b": [30, 40]}
        )
        assert "a" in out and "b" in out and "40" in out

    def test_nan_rendered_as_dash(self):
        out = render_table(["v"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_paper_comparison_verdicts(self):
        cmp = PaperComparison("Test")
        cmp.add("first", "1", "1", True)
        assert cmp.all_hold
        cmp.add("second", "2", "3", False)
        assert not cmp.all_hold
        rendered = cmp.render()
        assert "NO" in rendered and "yes" in rendered

"""Integration tests for the Querc service layer (Figure 1)."""

import pytest

from repro.core import LabeledQuery, QuercService, QueryClassifier, QWorker
from repro.core.labeler import ClassifierLabeler
from repro.errors import ServiceError
from repro.ml.forest import RandomizedForestClassifier
from repro.workloads.stream import QueryStream


@pytest.fixture(scope="module")
def service(fitted_doc2vec, snowsim_records):
    service = QuercService(n_folds=3, seed=0)
    service.embedders.register(
        "EmbedderA(X,Y)", fitted_doc2vec, trained_on=("X", "Y")
    )
    service.add_application("X")
    service.add_application("Y")
    service.add_application("Z", forward_to_database=False)
    service.import_logs("X", snowsim_records[:400])
    return service


class TestTopology:
    def test_duplicate_application_rejected(self, service):
        with pytest.raises(ServiceError):
            service.add_application("X")

    def test_unknown_application_raises(self, service):
        with pytest.raises(ServiceError):
            service.application("ghost")

    def test_application_names(self, service):
        assert service.application_names() == ["X", "Y", "Z"]

    def test_log_sharing_policy_blocks_foreign_embedder(self, service):
        # embedder trained on (X, Y) data may not serve Z
        with pytest.raises(ServiceError):
            service.train_and_deploy(
                "Z", label_name="account", embedder_name="EmbedderA(X,Y)",
                training_set_name="X",
            )

    def test_unfitted_embedder_rejected(self, service):
        from repro.embedding import Doc2VecEmbedder

        with pytest.raises(ServiceError):
            service.embedders.register("raw", Doc2VecEmbedder(dimension=4))


class TestTrainDeployProcess:
    def test_train_and_deploy_then_stream(self, service, snowsim_records):
        deployed = service.train_and_deploy(
            "X", label_name="account", embedder_name="EmbedderA(X,Y)"
        )
        assert deployed.version >= 1
        assert service.registry.current_version("X", "account") == deployed.version

        stream = QueryStream("X", snowsim_records[400:420], batch_size=5)
        out = []
        for batch in stream.batches():
            out.extend(service.process(batch))
        assert len(out) == 20
        assert all(m.has_label("account") for m in out)

    def test_forked_mode_returns_nothing_but_ingests(self, service, fitted_doc2vec, snowsim_records):
        labeler = ClassifierLabeler(RandomizedForestClassifier(n_trees=3, seed=0))
        labeler.fit(
            fitted_doc2vec.transform([r.query for r in snowsim_records[:50]]),
            [r.account for r in snowsim_records[:50]],
        )
        worker = service.application("Z").worker
        worker.add_classifier(
            QueryClassifier("account", fitted_doc2vec, labeler)
        )
        before = len(service.training.training_set("Z"))
        stream = QueryStream("Z", snowsim_records[50:60], batch_size=5)
        for batch in stream.batches():
            assert service.process(batch) == []  # forked: nothing forwarded
        assert len(service.training.training_set("Z")) == before + 10

    def test_evaluation_recorded(self, service):
        assert service.training.evaluations
        ev = service.training.evaluations[-1]
        assert 0.0 <= ev.mean_accuracy <= 1.0
        assert ev.n_folds >= 2

    def test_redeploy_bumps_version(self, service):
        v1 = service.registry.current_version("X", "account")
        service.train_and_deploy(
            "X", label_name="account", embedder_name="EmbedderA(X,Y)"
        )
        v2 = service.registry.current_version("X", "account")
        assert v2 > v1
        # worker still has exactly one classifier for the label
        worker = service.application("X").worker
        labels = [c.label_name for c in worker.classifiers]
        assert labels.count("account") == 1


class TestQWorker:
    def test_window_bounded(self, fitted_doc2vec):
        worker = QWorker("W", window_size=8)
        batch = [LabeledQuery.make(f"select {i}") for i in range(20)]
        worker.process_batch(batch)
        assert len(worker.window) == 8
        assert worker.recent(3)[-1].query == "select 19"

    def test_duplicate_label_classifier_rejected(self, fitted_doc2vec):
        worker = QWorker("W")
        labeler = ClassifierLabeler(RandomizedForestClassifier(n_trees=2, seed=0))
        labeler.fit(fitted_doc2vec.transform(["select 1", "select 2"]), ["a", "b"])
        worker.add_classifier(QueryClassifier("x", fitted_doc2vec, labeler))
        with pytest.raises(ServiceError):
            worker.add_classifier(QueryClassifier("x", fitted_doc2vec, labeler))

    def test_processed_count(self):
        worker = QWorker("W")
        worker.process_batch([LabeledQuery.make("q")] * 5)
        worker.process_batch([LabeledQuery.make("q")] * 2)
        assert worker.processed_count == 7

"""Unit tests for vectorized expression evaluation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.minidb.expressions import Frame, evaluate, rewrite_aggregates
from repro.minidb.storage import date_to_days
from repro.sql.parser import parse_select


def where_of(sql_condition: str):
    return parse_select(f"select 1 from t where {sql_condition}").where


def item_of(sql_expr: str):
    return parse_select(f"select {sql_expr} from t").items[0].expr


@pytest.fixture()
def frame():
    return Frame(
        columns={
            "t.a": np.array([1.0, 2.0, 3.0, 4.0]),
            "t.b": np.array([10.0, 20.0, 30.0, 40.0]),
            "t.s": np.array(["foo", "bar", "foobar", "baz"]),
            "t.d": np.array(
                [
                    date_to_days("1994-01-01"),
                    date_to_days("1994-06-15"),
                    date_to_days("1995-01-01"),
                    date_to_days("1996-01-01"),
                ]
            ),
        },
        dtypes={"t.a": "float", "t.b": "float", "t.s": "str", "t.d": "date"},
        n_rows=4,
    )


class TestArithmetic:
    def test_basic_ops(self, frame):
        assert evaluate(item_of("a + b"), frame).tolist() == [11, 22, 33, 44]
        assert evaluate(item_of("b / a"), frame).tolist() == [10, 10, 10, 10]
        assert evaluate(item_of("a * (1 - 0.5)"), frame).tolist() == [0.5, 1, 1.5, 2]

    def test_division_by_zero_is_nan(self):
        f = Frame(columns={"t.x": np.array([1.0])}, dtypes={"t.x": "float"}, n_rows=1)
        out = evaluate(item_of("x / 0"), f)
        assert np.isnan(out[0])

    def test_unary_minus(self, frame):
        assert evaluate(item_of("-a"), frame).tolist() == [-1, -2, -3, -4]


class TestComparisons:
    def test_numeric(self, frame):
        assert evaluate(where_of("a >= 3"), frame).tolist() == [False, False, True, True]

    def test_string_equality(self, frame):
        assert evaluate(where_of("s = 'bar'"), frame).tolist() == [False, True, False, False]

    def test_date_literal_against_date_column(self, frame):
        mask = evaluate(where_of("d < date '1995-01-01'"), frame)
        assert mask.tolist() == [True, True, False, False]

    def test_iso_string_against_date_column(self, frame):
        mask = evaluate(where_of("d >= '1994-06-15'"), frame)
        assert mask.tolist() == [False, True, True, True]

    def test_between(self, frame):
        mask = evaluate(where_of("a between 2 and 3"), frame)
        assert mask.tolist() == [False, True, True, False]

    def test_in_list(self, frame):
        mask = evaluate(where_of("a in (1, 4)"), frame)
        assert mask.tolist() == [True, False, False, True]

    def test_not_in_list(self, frame):
        mask = evaluate(where_of("a not in (1, 4)"), frame)
        assert mask.tolist() == [False, True, True, False]


class TestLike:
    def test_prefix(self, frame):
        assert evaluate(where_of("s like 'foo%'"), frame).tolist() == [
            True, False, True, False,
        ]

    def test_contains(self, frame):
        assert evaluate(where_of("s like '%oba%'"), frame).tolist() == [
            False, False, True, False,
        ]

    def test_underscore(self, frame):
        assert evaluate(where_of("s like 'ba_'"), frame).tolist() == [
            False, True, False, True,
        ]

    def test_regex_metachars_escaped(self):
        f = Frame(
            columns={"t.s": np.array(["a.b", "axb"])},
            dtypes={"t.s": "str"},
            n_rows=2,
        )
        assert evaluate(where_of("s like 'a.b'"), f).tolist() == [True, False]


class TestLogic:
    def test_and_or_not(self, frame):
        mask = evaluate(where_of("a > 1 and not (b >= 40 or s = 'bar')"), frame)
        assert mask.tolist() == [False, False, True, False]


class TestCaseAndFunctions:
    def test_case_when(self, frame):
        out = evaluate(
            item_of("case when a > 2 then 1 else 0 end"), frame
        )
        assert out.tolist() == [0, 0, 1, 1]

    def test_case_first_match_wins(self, frame):
        out = evaluate(
            item_of("case when a > 1 then 10 when a > 2 then 20 else 0 end"),
            frame,
        )
        assert out.tolist() == [0, 10, 10, 10]

    def test_extract_year(self, frame):
        out = evaluate(item_of("extract(year from d)"), frame)
        assert out.tolist() == [1994, 1994, 1995, 1996]

    def test_substring(self, frame):
        out = evaluate(item_of("substring(s, 1, 2)"), frame)
        assert out.tolist() == ["fo", "ba", "fo", "ba"]

    def test_aggregate_outside_aggregate_node_raises(self, frame):
        with pytest.raises(ExecutionError):
            evaluate(item_of("sum(a)"), frame)


class TestResolution:
    def test_unqualified_resolution(self, frame):
        mask = evaluate(where_of("a = 1"), frame)
        assert mask.tolist() == [True, False, False, False]

    def test_unknown_column_raises(self, frame):
        with pytest.raises(ExecutionError):
            evaluate(where_of("ghost = 1"), frame)

    def test_ambiguous_column_raises(self):
        f = Frame(
            columns={"x.a": np.zeros(1), "y.a": np.zeros(1)},
            dtypes={},
            n_rows=1,
        )
        with pytest.raises(ExecutionError):
            evaluate(where_of("a = 0"), f)


class TestRewriteAggregates:
    def test_rewrites_to_synthetic_columns(self):
        stmt = parse_select("select sum(a) / count(*) from t")
        expr = stmt.items[0].expr
        from repro.minidb.expressions import collect_aggregates

        calls = []
        collect_aggregates(expr, calls)
        mapping = {c: f"__agg{i}" for i, c in enumerate(calls)}
        rewritten = rewrite_aggregates(expr, mapping)
        f = Frame(
            columns={"__agg0": np.array([10.0]), "__agg1": np.array([5.0])},
            dtypes={},
            n_rows=1,
        )
        assert evaluate(rewritten, f).tolist() == [2.0]

"""Unit tests for K-means and the elbow method."""

import numpy as np
import pytest

from repro.errors import LabelingError
from repro.ml.kmeans import KMeans, choose_k_elbow


@pytest.fixture()
def blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = np.vstack(
        [c + rng.standard_normal((50, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(3), 50)
    return points, labels


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        points, truth = blobs
        model = KMeans(n_clusters=3, seed=0).fit(points)
        # cluster ids are arbitrary: check purity instead
        purity = 0
        for k in range(3):
            members = truth[model.labels == k]
            if len(members):
                purity += np.bincount(members).max()
        assert purity / len(points) > 0.95

    def test_predict_matches_fit_labels(self, blobs):
        points, _ = blobs
        model = KMeans(n_clusters=3, seed=0).fit(points)
        assert np.array_equal(model.predict(points), model.labels)

    def test_inertia_decreases_with_k(self, blobs):
        points, _ = blobs
        inertias = [
            KMeans(n_clusters=k, seed=0).fit(points).inertia for k in (1, 2, 3)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n_points(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        model = KMeans(n_clusters=4, seed=0).fit(points)
        assert model.inertia < 1e-12

    def test_too_many_clusters_raises(self):
        with pytest.raises(LabelingError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_bad_k_raises(self):
        with pytest.raises(LabelingError):
            KMeans(n_clusters=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(LabelingError):
            KMeans(n_clusters=2).predict(np.zeros((3, 2)))

    def test_duplicate_points_ok(self):
        points = np.ones((20, 3))
        model = KMeans(n_clusters=2, seed=0).fit(points)
        assert model.inertia < 1e-12

    def test_deterministic_given_seed(self, blobs):
        points, _ = blobs
        a = KMeans(n_clusters=3, seed=7).fit(points)
        b = KMeans(n_clusters=3, seed=7).fit(points)
        assert np.array_equal(a.labels, b.labels)


class TestElbow:
    def test_finds_three_blobs(self, blobs):
        points, _ = blobs
        k, curve = choose_k_elbow(points, 2, 10, seed=0)
        assert k in (3, 4)  # elbow sits at the true cluster count
        assert len(curve) >= k - 1

    def test_bounds_validated(self, blobs):
        points, _ = blobs
        with pytest.raises(LabelingError):
            choose_k_elbow(points, 5, 2)

    def test_k_max_capped_by_data(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        k, _ = choose_k_elbow(points, 2, 50, seed=0)
        assert k <= 5

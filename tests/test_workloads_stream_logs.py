"""Unit tests for query streams and log records."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.logs import QueryLogRecord, labels_of, queries_of
from repro.workloads.stream import QueryStream


@pytest.fixture()
def records():
    return [
        QueryLogRecord(query=f"select {i} from t", timestamp=float(i), user=f"u{i % 3}")
        for i in range(10)
    ]


class TestLogRecords:
    def test_label_accessor(self, records):
        assert records[0].label("user") == "u0"
        assert records[0].label("query").startswith("select")

    def test_unknown_label_raises(self, records):
        with pytest.raises(KeyError):
            records[0].label("nonexistent")

    def test_column_views(self, records):
        assert queries_of(records)[3] == "select 3 from t"
        assert labels_of(records, "user")[:3] == ["u0", "u1", "u2"]

    def test_records_immutable(self, records):
        with pytest.raises(Exception):
            records[0].user = "hacker"


class TestStream:
    def test_batches_cover_everything_in_order(self, records):
        stream = QueryStream("X", records, batch_size=3)
        batches = list(stream.batches())
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        flat = [r for b in batches for r in b.records]
        assert flat == records

    def test_time_steps_sequential(self, records):
        steps = [b.time_step for b in QueryStream("X", records, 4).batches()]
        assert steps == [0, 1, 2]

    def test_application_attached(self, records):
        batch = next(QueryStream("appY", records, 5).batches())
        assert batch.application == "appY"

    def test_bad_batch_size(self, records):
        with pytest.raises(WorkloadError):
            QueryStream("X", records, batch_size=0)

    def test_empty_stream(self):
        assert list(QueryStream("X", [], 4).batches()) == []

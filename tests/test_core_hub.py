"""Unit tests for the pre-trained model hub."""

import numpy as np
import pytest

from repro.core.hub import ModelHub
from repro.errors import ServiceError


@pytest.fixture()
def hub(tmp_path):
    return ModelHub(tmp_path / "hub")


class TestPublishFetch:
    def test_roundtrip(self, hub, fitted_doc2vec, small_corpus):
        hub.publish(
            "snowsim-d2v-16",
            fitted_doc2vec,
            corpus_description="50-query synthetic corpus",
            publisher="repro-tests",
        )
        fetched = hub.fetch("snowsim-d2v-16")
        assert np.allclose(
            fitted_doc2vec.transform(small_corpus[:3]),
            fetched.transform(small_corpus[:3]),
        )

    def test_listing_and_metadata(self, hub, fitted_doc2vec, fitted_lstm):
        hub.publish("a-model", fitted_doc2vec, "corpus A")
        hub.publish("b-model", fitted_lstm, "corpus B", publisher="uw")
        models = hub.list_models()
        assert [m.name for m in models] == ["a-model", "b-model"]
        entry = hub.describe("b-model")
        assert entry.kind == "LSTMAutoencoderEmbedder"
        assert entry.dimension == 16
        assert entry.publisher == "uw"

    def test_published_models_immutable(self, hub, fitted_doc2vec):
        hub.publish("pinned", fitted_doc2vec, "v1")
        with pytest.raises(ServiceError):
            hub.publish("pinned", fitted_doc2vec, "v2")

    def test_unknown_model_raises(self, hub):
        with pytest.raises(ServiceError):
            hub.fetch("ghost")

    def test_bad_name_rejected(self, hub, fitted_doc2vec):
        with pytest.raises(ServiceError):
            hub.publish("../escape", fitted_doc2vec, "x")
        with pytest.raises(ServiceError):
            hub.publish("", fitted_doc2vec, "x")

    def test_hub_survives_reopen(self, tmp_path, fitted_doc2vec):
        root = tmp_path / "hub"
        ModelHub(root).publish("persisted", fitted_doc2vec, "c")
        reopened = ModelHub(root)
        assert reopened.describe("persisted").name == "persisted"
        assert reopened.fetch("persisted").is_fitted

    def test_index_with_unknown_keys_still_reads(self, hub, fitted_doc2vec):
        """A newer hub may add index fields; old readers must not crash."""
        import json

        hub.publish("future-proof", fitted_doc2vec, "c")
        index_path = hub._root / "index.json"
        index = json.loads(index_path.read_text())
        index["future-proof"]["license"] = "apache-2.0"  # unknown field
        index["future-proof"]["downloads"] = 17
        index_path.write_text(json.dumps(index))

        entry = hub.describe("future-proof")
        assert entry.name == "future-proof"
        assert [m.name for m in hub.list_models()] == ["future-proof"]
        assert hub.fetch("future-proof").is_fitted

    def test_index_missing_required_key_raises_service_error(
        self, hub, fitted_doc2vec
    ):
        import json

        hub.publish("truncated", fitted_doc2vec, "c")
        index_path = hub._root / "index.json"
        index = json.loads(index_path.read_text())
        del index["truncated"]["publisher"]
        index_path.write_text(json.dumps(index))
        with pytest.raises(ServiceError):
            hub.describe("truncated")

    def test_save_index_is_atomic(self, hub, fitted_doc2vec):
        """Publishing must never leave a temp file or partial index."""
        hub.publish("atomic", fitted_doc2vec, "c")
        leftovers = [p for p in hub._root.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []
        assert hub.describe("atomic").filename == "atomic.npz"

    def test_fetched_model_serves_transfer_learning(self, hub, fitted_lstm):
        """A third party embeds queries from a schema the publisher
        never saw — the Figure 3 transfer path."""
        hub.publish("public-lstm", fitted_lstm, "generic SQL corpus")
        foreign = [
            "select revenue, region from warehouse_facts where year = 2019",
            "select count(*) from audit_log where action = 'delete'",
        ]
        vectors = hub.fetch("public-lstm").transform(foreign)
        assert vectors.shape == (2, 16)
        assert np.isfinite(vectors).all()

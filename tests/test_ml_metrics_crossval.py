"""Unit tests for metrics, cross-validation, and preprocessing."""

import numpy as np
import pytest

from repro.errors import LabelingError
from repro.ml.crossval import StratifiedKFold, cross_val_score
from repro.ml.metrics import accuracy_score, confusion_matrix, f1_macro
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocess import LabelEncoder, StandardScaler, train_test_split


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(LabelingError):
            accuracy_score(np.array([1]), np.array([1, 2]))

    def test_accuracy_empty(self):
        with pytest.raises(LabelingError):
            accuracy_score(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        m = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        assert m.tolist() == [[1, 1], [0, 2]]

    def test_f1_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert f1_macro(y, y) == 1.0

    def test_f1_handles_absent_predictions(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 0])
        score = f1_macro(y_true, y_pred)
        assert 0.0 < score < 1.0


class TestStratifiedKFold:
    def test_partitions_everything_once(self):
        labels = np.array([0] * 10 + [1] * 20)
        seen = np.zeros(30, dtype=int)
        for train, test in StratifiedKFold(5, seed=0).split(labels):
            assert set(train) | set(test) == set(range(30))
            seen[test] += 1
        assert (seen == 1).all()

    def test_stratification_preserved(self):
        labels = np.array([0] * 50 + [1] * 50)
        for train, test in StratifiedKFold(5, seed=0).split(labels):
            fraction = labels[test].mean()
            assert 0.3 <= fraction <= 0.7

    def test_tiny_classes_spread(self):
        labels = np.array([0] * 20 + [1])  # one lonely member
        folds = list(StratifiedKFold(5, seed=0).split(labels))
        assert len(folds) == 5

    def test_bad_splits_raises(self):
        with pytest.raises(LabelingError):
            StratifiedKFold(1)

    def test_too_few_samples_raises(self):
        with pytest.raises(LabelingError):
            list(StratifiedKFold(5).split(np.array([0, 1])))


class TestCrossValScore:
    def test_scores_reasonable_on_separable(self, rng):
        features = np.vstack(
            [rng.standard_normal((40, 3)) + 5, rng.standard_normal((40, 3)) - 5]
        )
        labels = np.repeat([0, 1], 40)
        scores = cross_val_score(
            lambda: KNeighborsClassifier(3), features, labels, n_splits=4
        )
        assert len(scores) == 4
        assert scores.mean() > 0.95


class TestPreprocess:
    def test_label_encoder_roundtrip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b", "c"])
        assert enc.inverse_transform(codes) == ["b", "a", "b", "c"]

    def test_label_encoder_unseen_raises(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(LabelingError):
            enc.transform(["zzz"])

    def test_scaler_zero_mean_unit_variance(self, rng):
        data = rng.standard_normal((100, 4)) * 7 + 3
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1, atol=1e-9)

    def test_scaler_constant_column_passthrough(self):
        data = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_train_test_split_stratified(self):
        features = np.arange(40).reshape(20, 2)
        labels = np.repeat([0, 1], 10)
        xtr, xte, ytr, yte = train_test_split(features, labels, 0.3, seed=0)
        assert len(xte) + len(xtr) == 20
        assert set(np.unique(yte)) == {0, 1}

    def test_train_test_split_bad_fraction(self):
        with pytest.raises(LabelingError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5)


class TestKNN:
    def test_majority_vote(self):
        features = np.array([[0.0], [0.1], [0.2], [10.0], [10.1]])
        labels = np.array([0, 0, 0, 1, 1])
        knn = KNeighborsClassifier(3).fit(features, labels)
        assert knn.predict(np.array([[0.05]]))[0] == 0
        assert knn.predict(np.array([[10.05]]))[0] == 1

    def test_kneighbors_sorted_by_distance(self):
        features = np.array([[0.0], [1.0], [5.0]])
        knn = KNeighborsClassifier(3).fit(features, np.array([0, 1, 2]))
        dists, idx = knn.kneighbors(np.array([[0.9]]))
        assert idx[0].tolist() == [1, 0, 2]
        assert np.all(np.diff(dists[0]) >= 0)

    def test_k_larger_than_data(self):
        features = np.array([[0.0], [1.0]])
        knn = KNeighborsClassifier(10).fit(features, np.array([0, 1]))
        probs = knn.predict_proba(np.array([[0.4]]))
        assert probs.shape == (1, 2)

"""Docs stay healthy in tier-1: links resolve, indexes are complete.

Runs the same checks as ``tools/check_doc_links.py`` (which CI invokes
as the docs-health step) so a broken internal link or an unindexed
example fails the ordinary test run too, not just CI.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in ("docs/architecture.md", "docs/api.md", "docs/examples.md"):
        assert (REPO_ROOT / doc).is_file(), f"{doc} missing"
        assert doc in readme, f"README does not link {doc}"


def test_internal_markdown_links_resolve():
    checker = _load_checker()
    assert checker.check_links() == []


def test_examples_index_is_complete():
    checker = _load_checker()
    assert checker.check_examples_index() == []


def test_examples_compile():
    import compileall

    assert compileall.compile_dir(
        str(REPO_ROOT / "examples"), quiet=2, force=True
    )

"""Unit tests for decision trees and randomized forests."""

import numpy as np
import pytest

from repro.errors import LabelingError
from repro.ml.forest import RandomizedForestClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def separable(rng):
    x0 = rng.standard_normal((80, 4)) + np.array([3, 3, 0, 0])
    x1 = rng.standard_normal((80, 4)) - np.array([3, 3, 0, 0])
    features = np.vstack([x0, x1])
    labels = np.repeat([0, 1], 80)
    return features, labels


class TestDecisionTree:
    def test_fits_separable_data(self, separable):
        features, labels = separable
        tree = DecisionTreeClassifier(seed=0).fit(features, labels)
        assert (tree.predict(features) == labels).mean() > 0.95

    def test_probabilities_sum_to_one(self, separable):
        features, labels = separable
        tree = DecisionTreeClassifier(seed=0).fit(features, labels)
        probs = tree.predict_proba(features)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_max_depth_respected(self, separable):
        features, labels = separable
        tree = DecisionTreeClassifier(max_depth=2, seed=0).fit(features, labels)
        assert tree.depth() <= 2

    def test_pure_node_becomes_leaf(self):
        features = np.zeros((10, 2))
        labels = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier(seed=0).fit(features, labels)
        assert tree.depth() == 0

    def test_constant_features_yield_leaf(self):
        features = np.ones((10, 3))
        labels = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier(seed=0).fit(features, labels)
        assert tree.depth() == 0  # no usable split

    def test_min_samples_leaf(self, separable):
        features, labels = separable
        tree = DecisionTreeClassifier(min_samples_leaf=40, seed=0)
        tree.fit(features, labels)
        probs = tree.predict_proba(features)
        assert probs.shape == (160, 2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(LabelingError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(LabelingError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_unseen_class_count_via_n_classes(self, separable):
        features, labels = separable
        tree = DecisionTreeClassifier(seed=0).fit(features, labels, n_classes=5)
        assert tree.predict_proba(features).shape == (160, 5)


class TestForest:
    def test_fits_separable_data(self, separable):
        features, labels = separable
        forest = RandomizedForestClassifier(n_trees=10, seed=0).fit(features, labels)
        assert forest.score(features, labels) > 0.97

    def test_better_than_single_tree_on_noisy_data(self, rng):
        # XOR-ish pattern with noise: ensembles should help
        n = 400
        features = rng.standard_normal((n, 6))
        labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
        features[:, 2:] = rng.standard_normal((n, 4)) * 3
        train, test = slice(0, 300), slice(300, 400)
        tree_acc = (
            DecisionTreeClassifier(max_depth=6, seed=0)
            .fit(features[train], labels[train])
            .predict(features[test])
            == labels[test]
        ).mean()
        forest_acc = (
            RandomizedForestClassifier(n_trees=30, max_depth=6, seed=0)
            .fit(features[train], labels[train])
            .predict(features[test])
            == labels[test]
        ).mean()
        assert forest_acc >= tree_acc - 0.02

    def test_deterministic_given_seed(self, separable):
        features, labels = separable
        a = RandomizedForestClassifier(n_trees=5, seed=9).fit(features, labels)
        b = RandomizedForestClassifier(n_trees=5, seed=9).fit(features, labels)
        assert np.array_equal(a.predict(features), b.predict(features))

    def test_probability_shape_and_simplex(self, separable):
        features, labels = separable
        forest = RandomizedForestClassifier(n_trees=5, seed=0).fit(features, labels)
        probs = forest.predict_proba(features)
        assert probs.shape == (160, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_bad_n_trees_raises(self):
        with pytest.raises(LabelingError):
            RandomizedForestClassifier(n_trees=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(LabelingError):
            RandomizedForestClassifier().predict(np.zeros((1, 2)))

    def test_without_bootstrap(self, separable):
        features, labels = separable
        forest = RandomizedForestClassifier(
            n_trees=5, bootstrap=False, seed=0
        ).fit(features, labels)
        assert forest.score(features, labels) > 0.95

"""Unit tests for the SELECT parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_select


class TestProjection:
    def test_simple_items_and_aliases(self):
        stmt = parse_select("select a, b as bee, c cee from t")
        assert [i.output_name for i in stmt.items] == ["a", "bee", "cee"]

    def test_star(self):
        stmt = parse_select("select * from t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_select("select t.* from t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[0].expr.table == "t"

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct
        assert not parse_select("select a from t").distinct

    def test_expression_item(self):
        stmt = parse_select("select a * (1 - b) as x from t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.op == "*"


class TestAggregates:
    def test_count_star(self):
        stmt = parse_select("select count(*) from t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.FunctionCall) and call.star

    def test_count_distinct(self):
        stmt = parse_select("select count(distinct a) from t")
        call = stmt.items[0].expr
        assert call.distinct

    def test_nested_arithmetic_inside_agg(self):
        stmt = parse_select("select sum(a * (1 - b)) from t")
        assert ast.contains_aggregate(stmt.items[0].expr)


class TestFromClause:
    def test_comma_joins(self):
        stmt = parse_select("select 1 from a, b, c")
        assert len(stmt.relations) == 3

    def test_alias_with_and_without_as(self):
        stmt = parse_select("select 1 from orders as o, lineitem l")
        assert stmt.relations[0].alias == "o"
        assert stmt.relations[1].alias == "l"

    def test_explicit_join_on(self):
        stmt = parse_select("select 1 from a join b on a.x = b.y")
        join = stmt.relations[0]
        assert isinstance(join, ast.Join) and join.kind == "INNER"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_left_outer_join(self):
        stmt = parse_select("select 1 from a left outer join b on a.x = b.y")
        assert stmt.relations[0].kind == "LEFT"

    def test_derived_table(self):
        stmt = parse_select("select 1 from (select a from t) as sub")
        rel = stmt.relations[0]
        assert isinstance(rel, ast.SubqueryRef) and rel.alias == "sub"

    def test_schema_qualified_table_keeps_last_component(self):
        stmt = parse_select("select 1 from warehouse.public.orders")
        assert stmt.relations[0].name == "orders"

    def test_using_clause(self):
        stmt = parse_select("select 1 from a join b using (k)")
        join = stmt.relations[0]
        assert isinstance(join.condition, ast.BinaryOp)
        assert join.condition.op == "="


class TestPredicates:
    def test_precedence_or_lower_than_and(self):
        stmt = parse_select("select 1 from t where a = 1 or b = 2 and c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_between(self):
        stmt = parse_select("select 1 from t where a between 1 and 5")
        assert isinstance(stmt.where, ast.Between)

    def test_not_between(self):
        stmt = parse_select("select 1 from t where a not between 1 and 5")
        assert stmt.where.negated

    def test_like_and_not_like(self):
        assert isinstance(
            parse_select("select 1 from t where s like 'x%'").where, ast.Like
        )
        assert parse_select("select 1 from t where s not like 'x%'").where.negated

    def test_in_list(self):
        stmt = parse_select("select 1 from t where a in (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_in_subquery(self):
        stmt = parse_select("select 1 from t where a in (select b from u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_not_in_subquery(self):
        stmt = parse_select("select 1 from t where a not in (select b from u)")
        assert stmt.where.negated

    def test_exists(self):
        stmt = parse_select(
            "select 1 from t where exists (select * from u where u.x = t.x)"
        )
        assert isinstance(stmt.where, ast.Exists)

    def test_not_exists_wrapped_in_not(self):
        stmt = parse_select("select 1 from t where not exists (select 1 from u)")
        assert isinstance(stmt.where, ast.UnaryOp)
        assert isinstance(stmt.where.operand, ast.Exists)

    def test_is_null_and_is_not_null(self):
        assert isinstance(
            parse_select("select 1 from t where a is null").where, ast.IsNull
        )
        assert parse_select("select 1 from t where a is not null").where.negated

    def test_scalar_subquery_comparison(self):
        stmt = parse_select(
            "select 1 from t where a > (select avg(a) from t)"
        )
        assert isinstance(stmt.where.right, ast.ScalarSubquery)


class TestClauses:
    def test_group_by_and_having(self):
        stmt = parse_select(
            "select a, count(*) from t group by a having count(*) > 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("select a, b from t order by a desc, b asc, a")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit(self):
        assert parse_select("select 1 from t limit 7").limit == 7

    def test_top(self):
        assert parse_select("select top 3 a from t").limit == 3

    def test_fetch_first(self):
        assert parse_select("select a from t fetch first 9 rows only").limit == 9

    def test_trailing_semicolon_ok(self):
        parse_select("select 1 from t;")


class TestSpecialExpressions:
    def test_case_when(self):
        stmt = parse_select(
            "select case when a > 1 then 'big' else 'small' end from t"
        )
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        assert expr.default is not None

    def test_case_without_else(self):
        stmt = parse_select("select case when a = 1 then 2 end from t")
        assert stmt.items[0].expr.default is None

    def test_date_literal(self):
        stmt = parse_select("select 1 from t where d >= date '1994-01-01'")
        lit = stmt.where.right
        assert isinstance(lit, ast.Literal) and lit.kind == "date"

    def test_interval_folds_to_days(self):
        stmt = parse_select("select interval '3' month from t")
        lit = stmt.items[0].expr
        assert isinstance(lit, ast.Literal)
        assert lit.value == 90

    def test_extract(self):
        stmt = parse_select("select extract(year from d) from t")
        call = stmt.items[0].expr
        assert call.name == "EXTRACT_YEAR"

    def test_cast(self):
        stmt = parse_select("select cast(a as decimal(12, 2)) from t")
        assert stmt.items[0].expr.name == "CAST_DECIMAL"

    def test_unary_minus(self):
        stmt = parse_select("select -a from t")
        assert isinstance(stmt.items[0].expr, ast.UnaryOp)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "update t set a = 1",
            "select from t",
            "select a from t where",
            "select a from t group a",
            "select case end from t",
            "select a from t extra garbage",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_select(bad)


class TestReferencedTables:
    def test_collects_tables_through_subqueries(self):
        stmt = parse_select(
            "select 1 from a where x in (select y from b) "
            "and exists (select 1 from c where c.z = a.z)"
        )
        assert set(stmt.referenced_tables()) == {"a", "b", "c"}

    def test_derived_tables_counted(self):
        stmt = parse_select("select 1 from (select * from inner_t) d")
        assert stmt.referenced_tables() == ["inner_t"]

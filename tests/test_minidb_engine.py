"""Engine correctness: SQL results checked against numpy oracles.

These tests execute real queries on the generated TPC-H data and
verify the rows against direct numpy computation over the raw columns —
the engine must be *correct*, not just costed.
"""

import numpy as np
import pytest

from repro.minidb import IndexConfig, Index
from repro.minidb.storage import date_to_days


@pytest.fixture(scope="module")
def li(tpch_db):
    return tpch_db.table("lineitem").columns


class TestFilterAggregate:
    def test_q6_revenue_matches_numpy(self, tpch_db, li):
        result = tpch_db.execute(
            "select sum(l_extendedprice * l_discount) as revenue from lineitem "
            "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
            "and l_discount between 0.05 and 0.07 and l_quantity < 24"
        )
        lo, hi = date_to_days("1994-01-01"), date_to_days("1995-01-01")
        mask = (
            (li["l_shipdate"] >= lo)
            & (li["l_shipdate"] < hi)
            & (li["l_discount"] >= 0.05)
            & (li["l_discount"] <= 0.07)
            & (li["l_quantity"] < 24)
        )
        expected = float((li["l_extendedprice"][mask] * li["l_discount"][mask]).sum())
        assert result.rows[0][0] == pytest.approx(expected)

    def test_count_star(self, tpch_db, li):
        result = tpch_db.execute("select count(*) from lineitem")
        assert result.rows[0][0] == len(li["l_orderkey"])

    def test_group_by_counts_match(self, tpch_db, li):
        result = tpch_db.execute(
            "select l_returnflag, count(*) as n from lineitem group by l_returnflag"
        )
        got = {flag: int(n) for flag, n in result.rows}
        values, counts = np.unique(li["l_returnflag"], return_counts=True)
        assert got == dict(zip([str(v) for v in values], counts.tolist()))

    def test_avg_matches(self, tpch_db, li):
        result = tpch_db.execute("select avg(l_quantity) from lineitem")
        assert result.rows[0][0] == pytest.approx(float(li["l_quantity"].mean()))

    def test_empty_result_aggregate(self, tpch_db):
        result = tpch_db.execute(
            "select count(*) from lineitem where l_quantity > 9999"
        )
        assert result.rows[0][0] == 0


class TestJoin:
    def test_two_way_join_count(self, tpch_db):
        result = tpch_db.execute(
            "select count(*) from orders, lineitem where o_orderkey = l_orderkey"
        )
        # every lineitem has exactly one order
        assert result.rows[0][0] == tpch_db.table("lineitem").n_rows

    def test_join_with_filter_matches_numpy(self, tpch_db, li):
        orders = tpch_db.table("orders").columns
        result = tpch_db.execute(
            "select count(*) from orders, lineitem "
            "where o_orderkey = l_orderkey and o_orderstatus = 'F'"
        )
        f_orders = set(orders["o_orderkey"][orders["o_orderstatus"] == "F"].tolist())
        expected = sum(1 for k in li["l_orderkey"].tolist() if k in f_orders)
        assert result.rows[0][0] == expected

    def test_join_results_identical_with_and_without_index(self, tpch_db):
        sql = (
            "select o_orderpriority, count(*) as n from orders, lineitem "
            "where o_orderkey = l_orderkey and o_orderdate < date '1995-01-01' "
            "group by o_orderpriority order by o_orderpriority"
        )
        plain = tpch_db.execute(sql)
        indexed = tpch_db.execute(
            sql, IndexConfig([Index("lineitem", ("l_orderkey",))])
        )
        assert plain.rows == indexed.rows

    def test_left_join_keeps_unmatched(self, tpch_db):
        # customers whose custkey % 3 == 0 have no orders by construction
        result = tpch_db.execute(
            "select c_custkey, count(o_orderkey) as n from customer "
            "left outer join orders on c_custkey = o_custkey "
            "group by c_custkey"
        )
        counts = {int(k): int(n) for k, n in result.rows}
        assert len(counts) == tpch_db.table("customer").n_rows
        zero_customers = [k for k, n in counts.items() if n == 0]
        assert zero_customers, "expected some order-less customers"
        assert all(k % 3 == 0 for k in zero_customers)


class TestSubqueries:
    def test_in_subquery_semantics(self, tpch_db, li):
        threshold = 150
        result = tpch_db.execute(
            "select count(*) from orders where o_orderkey in "
            f"(select l_orderkey from lineitem group by l_orderkey "
            f"having sum(l_quantity) > {threshold})"
        )
        keys = li["l_orderkey"]
        sums = {}
        for k, q in zip(keys.tolist(), li["l_quantity"].tolist()):
            sums[k] = sums.get(k, 0) + q
        expected = sum(1 for v in sums.values() if v > threshold)
        assert result.rows[0][0] == expected

    def test_scalar_subquery(self, tpch_db):
        result = tpch_db.execute(
            "select count(*) from customer "
            "where c_acctbal > (select avg(c_acctbal) from customer)"
        )
        cust = tpch_db.table("customer").columns
        expected = int((cust["c_acctbal"] > cust["c_acctbal"].mean()).sum())
        assert result.rows[0][0] == expected

    def test_exists_correlated(self, tpch_db, li):
        result = tpch_db.execute(
            "select count(*) from orders where exists "
            "(select * from lineitem where l_orderkey = o_orderkey "
            "and l_quantity > 45)"
        )
        hot = set(li["l_orderkey"][li["l_quantity"] > 45].tolist())
        assert result.rows[0][0] == len(hot)

    def test_not_exists_correlated(self, tpch_db):
        total = tpch_db.execute("select count(*) from orders").rows[0][0]
        with_match = tpch_db.execute(
            "select count(*) from orders where exists "
            "(select * from lineitem where l_orderkey = o_orderkey)"
        ).rows[0][0]
        without = tpch_db.execute(
            "select count(*) from orders where not exists "
            "(select * from lineitem where l_orderkey = o_orderkey)"
        ).rows[0][0]
        assert with_match + without == total


class TestOrderingAndLimit:
    def test_order_by_desc_limit(self, tpch_db):
        result = tpch_db.execute(
            "select o_orderkey, o_totalprice from orders "
            "order by o_totalprice desc limit 5"
        )
        prices = [row[1] for row in result.rows]
        assert prices == sorted(prices, reverse=True)
        all_prices = tpch_db.table("orders").columns["o_totalprice"]
        assert prices[0] == pytest.approx(float(all_prices.max()))

    def test_multi_key_sort(self, tpch_db):
        result = tpch_db.execute(
            "select l_returnflag, l_linestatus, count(*) as n from lineitem "
            "group by l_returnflag, l_linestatus "
            "order by l_returnflag, l_linestatus"
        )
        keys = [(r[0], r[1]) for r in result.rows]
        assert keys == sorted(keys)

    def test_distinct(self, tpch_db):
        result = tpch_db.execute("select distinct o_orderstatus from orders")
        statuses = sorted(r[0] for r in result.rows)
        expected = sorted(
            np.unique(tpch_db.table("orders").columns["o_orderstatus"]).tolist()
        )
        assert statuses == expected


class TestCostAccounting:
    def test_actual_cost_positive_and_reported(self, tpch_db):
        result = tpch_db.execute("select count(*) from lineitem")
        assert result.actual_cost > 0
        assert result.est_cost > 0

    def test_index_seek_cheaper_for_selective_predicate(self, tpch_db):
        sql = "select count(*) from orders where o_orderkey = 17"
        plain = tpch_db.execute(sql)
        indexed = tpch_db.execute(
            sql, IndexConfig([Index("orders", ("o_orderkey",))])
        )
        assert indexed.rows == plain.rows
        assert indexed.actual_cost < plain.actual_cost / 10

    def test_explain_mentions_nodes(self, tpch_db):
        text = tpch_db.explain("select count(*) from lineitem")
        assert "ScanNode" in text and "AggregateNode" in text

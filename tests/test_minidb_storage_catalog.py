"""Unit tests for storage, catalog, and statistics."""

import datetime

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.minidb.catalog import Catalog, TableMeta, compute_column_stats
from repro.minidb.storage import (
    Table,
    date_to_days,
    days_to_date,
    days_to_month,
    days_to_year,
    make_column,
)


class TestDates:
    def test_roundtrip(self):
        for iso in ("1970-01-01", "1992-06-15", "1998-08-02"):
            assert days_to_date(date_to_days(iso)).isoformat() == iso

    def test_accepts_date_objects(self):
        assert date_to_days(datetime.date(1970, 1, 2)) == 1

    def test_vectorized_year_month(self):
        days = np.array([date_to_days("1994-03-17"), date_to_days("1998-12-31")])
        assert days_to_year(days).tolist() == [1994, 1998]
        assert days_to_month(days).tolist() == [3, 12]


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(Exception):
            Table(
                name="t",
                dtypes={"a": "int", "b": "int"},
                columns={"a": np.zeros(3), "b": np.zeros(2)},
            )

    def test_unknown_column_raises(self):
        table = Table(name="t", dtypes={"a": "int"}, columns={"a": np.zeros(2)})
        with pytest.raises(CatalogError):
            table.column("zzz")

    def test_make_column_coerces_dates(self):
        col = make_column("date", ["1970-01-03", "1970-01-01"])
        assert col.tolist() == [2, 0]

    def test_make_column_rejects_bad_dtype(self):
        with pytest.raises(CatalogError):
            make_column("uuid", [1])

    def test_metadata_stats(self):
        table = Table(
            name="t",
            dtypes={"a": "int", "s": "str"},
            columns={
                "a": np.array([1, 2, 2, 9]),
                "s": np.array(["x", "y", "x", "z"]),
            },
        )
        meta = table.metadata()
        assert meta.row_count == 4
        assert meta.columns["a"].n_distinct == 3
        assert meta.columns["a"].min_value == 1
        assert meta.columns["a"].max_value == 9
        assert meta.columns["s"].n_distinct == 3


class TestColumnStats:
    def test_range_selectivity_full_range(self):
        stats = compute_column_stats("a", "int", np.arange(100))
        assert stats.range_selectivity(None, None) == pytest.approx(1.0, abs=0.05)

    def test_range_selectivity_half(self):
        stats = compute_column_stats("a", "int", np.arange(100))
        assert stats.range_selectivity(None, 49) == pytest.approx(0.5, abs=0.1)

    def test_range_selectivity_outside(self):
        stats = compute_column_stats("a", "int", np.arange(100))
        assert stats.range_selectivity(1000, None) == 0.0

    def test_equality_selectivity(self):
        stats = compute_column_stats("a", "int", np.array([1, 1, 2, 3]))
        assert stats.equality_selectivity() == pytest.approx(1 / 3)

    def test_skewed_histogram_better_than_uniform(self):
        # 90% of mass at the low end: histogram should notice
        values = np.concatenate([np.zeros(900), np.linspace(0, 100, 100)])
        stats = compute_column_stats("a", "float", values)
        assert stats.range_selectivity(None, 5.0) > 0.8


class TestCatalog:
    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(TableMeta(name="t"))
        with pytest.raises(CatalogError):
            catalog.add_table(TableMeta(name="t"))

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("ghost")

    def test_virtual_multiplier_scales_rows(self):
        catalog = Catalog(virtual_row_multiplier=100.0)
        catalog.add_table(TableMeta(name="t", row_count=10))
        assert catalog.scaled_rows("t") == 1000.0

    def test_bad_multiplier_rejected(self):
        with pytest.raises(CatalogError):
            Catalog(virtual_row_multiplier=0.0)

    def test_which_table_resolution(self, tpch_db):
        catalog = tpch_db.catalog
        assert catalog.which_table("l_orderkey") == "lineitem"
        with pytest.raises(CatalogError):
            catalog.which_table("no_such_col")

"""The staged executor's shared stage pool and the batch-size tuner.

The overlap and isolation properties are proven with events, not
timing: a test that requires stage B of batch *n* to wait on stage A
of batch *n+1* can only pass when the stages genuinely run
concurrently, and the per-lane serialization invariant is proven by
counting concurrent stage entries per application under a pool wide
enough to violate it. Tuner tests drive the controller with synthetic
observations and an injectable clock — fully deterministic, no sleeps.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends import NullBackend
from repro.core import QuercService
from repro.errors import ServiceError
from repro.runtime import BatchSizeTuner, StagedExecutor
from repro.workloads import (
    QueryLogRecord,
    QueryStream,
    StreamBatch,
    interleave_streams,
    rebatch_streams,
)

WAIT = 20.0  # generous: only ever hit when pipelining is broken


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _records(n: int, tag: str = "q") -> list[QueryLogRecord]:
    return [QueryLogRecord(query=f"select {tag}_{i} from t") for i in range(n)]


def _batch(app: str, step: int, n: int = 4) -> StreamBatch:
    return StreamBatch(
        application=app, time_step=step, records=tuple(_records(n, f"{app}{step}"))
    )


# -- StagedExecutor -----------------------------------------------------------


class TestStagedExecutor:
    @pytest.fixture(autouse=True)
    def _hygiene(self, no_thread_leaks):
        # every test here closes its executor; none may leak a worker
        yield

    def test_results_in_order_with_both_stages_applied(self):
        with StagedExecutor(
            label_fn=lambda app, item: item * 2,
            dispatch_fn=lambda app, staged: staged + 1,
        ) as ex:
            futures = [ex.submit("X", i) for i in range(10)]
            assert [f.result(WAIT) for f in futures] == [
                i * 2 + 1 for i in range(10)
            ]

    def test_stage_b_overlaps_stage_a_across_batches(self):
        """Dispatch of batch 1 waits for batch 2's labeling — possible
        only if the stages are pipelined across batches."""
        second_labeled = threading.Event()
        overlapped = []

        def label(app, item):
            if item == 2:
                second_labeled.set()
            return item

        def dispatch(app, item):
            if item == 1:
                overlapped.append(second_labeled.wait(WAIT))
            return item

        with StagedExecutor(label, dispatch) as ex:
            futures = [ex.submit("X", 1), ex.submit("X", 2)]
            assert [f.result(WAIT) for f in futures] == [1, 2]
        assert overlapped == [True]

    def test_lanes_isolate_applications(self):
        """A blocked stage A on one application must not stall another
        application's lane."""
        release_x = threading.Event()

        def label(app, item):
            if app == "X":
                assert release_x.wait(WAIT)
            return item

        with StagedExecutor(label, lambda app, item: item) as ex:
            slow = ex.submit("X", "stuck")
            fast = [ex.submit("Y", i) for i in range(5)]
            # Y's whole stream completes while X is still blocked
            assert [f.result(WAIT) for f in fast] == list(range(5))
            assert not slow.done()
            release_x.set()
            assert slow.result(WAIT) == "stuck"

    def test_per_application_ordering_is_preserved(self):
        seen: dict[str, list[int]] = {"X": [], "Y": []}
        lock = threading.Lock()

        def dispatch(app, item):
            with lock:
                seen[app].append(item)
            return item

        with StagedExecutor(lambda app, item: item, dispatch) as ex:
            futures = [
                ex.submit("X" if i % 2 == 0 else "Y", i) for i in range(20)
            ]
            [f.result(WAIT) for f in futures]
        assert seen["X"] == [i for i in range(20) if i % 2 == 0]
        assert seen["Y"] == [i for i in range(20) if i % 2 == 1]

    def test_label_error_resolves_future_and_spares_the_lane(self):
        def label(app, item):
            if item == "bad":
                raise ValueError("boom")
            return item

        with StagedExecutor(label, lambda app, item: item) as ex:
            bad = ex.submit("X", "bad")
            good = ex.submit("X", "good")
            with pytest.raises(ValueError, match="boom"):
                bad.result(WAIT)
            assert good.result(WAIT) == "good"
            stats = ex.stats()
        assert stats["lanes"]["X"]["label_errors"] == 1
        assert stats["lanes"]["X"]["dispatched_batches"] == 1

    def test_dispatch_error_resolves_future(self):
        def dispatch(app, item):
            raise RuntimeError("db down")

        with StagedExecutor(lambda app, item: item, dispatch) as ex:
            future = ex.submit("X", 1)
            with pytest.raises(RuntimeError, match="db down"):
                future.result(WAIT)
            assert ex.stats()["lanes"]["X"]["dispatch_errors"] == 1

    def test_submit_after_close_raises(self):
        ex = StagedExecutor(lambda app, item: item, lambda app, item: item)
        ex.submit("X", 1)
        ex.close()
        ex.close()  # idempotent
        with pytest.raises(ServiceError):
            ex.submit("X", 2)

    def test_new_lane_after_close_raises(self):
        # a lane born after close() snapshotted the lane table would
        # never get a shutdown sentinel — it must be refused instead
        ex = StagedExecutor(lambda app, item: item, lambda app, item: item)
        ex.submit("X", 1)
        ex.close()
        with pytest.raises(ServiceError):
            ex.submit("Y", 1)

    def test_submit_racing_close_never_strands_a_future(self):
        # producers hammer submit while close() lands mid-stream: every
        # future must either resolve or the submit must raise — none
        # may silently queue behind the shutdown sentinel and hang
        for _ in range(20):
            ex = StagedExecutor(lambda app, item: item, lambda app, item: item)
            futures: list = []
            rejected = threading.Event()

            def produce():
                for i in range(50):
                    try:
                        futures.append(ex.submit("X", i))
                    except ServiceError:
                        rejected.set()
                        return

            producer = threading.Thread(target=produce)
            producer.start()
            ex.close()
            producer.join(WAIT)
            assert not producer.is_alive()
            for future in futures:
                assert future.result(WAIT) is not None
            assert rejected.is_set() or len(futures) == 50

    def test_map_keeps_input_order_across_lanes(self):
        batches = [_batch("X", 0), _batch("Y", 0), _batch("X", 1)]
        with StagedExecutor(
            lambda app, b: (app, b.time_step), lambda app, staged: staged
        ) as ex:
            assert ex.map(batches) == [("X", 0), ("Y", 0), ("X", 1)]

    def test_executor_feeds_tuner_with_batch_sizes(self):
        tuner = BatchSizeTuner(initial=8, clock=FakeClock())
        with StagedExecutor(
            lambda app, b: b, lambda app, b: b, tuner=tuner
        ) as ex:
            ex.map([_batch("X", 0, n=6), _batch("Y", 0, n=3)])
        snap = tuner.snapshot()["applications"]
        assert snap["X"]["samples"] == 1
        assert snap["Y"]["samples"] == 1

    def test_stats_shape_and_bounded_queues(self):
        with StagedExecutor(
            lambda app, item: item, lambda app, item: item, queue_depth=2
        ) as ex:
            [f.result(WAIT) for f in [ex.submit("X", i) for i in range(12)]]
            stats = ex.stats()
        lane = stats["lanes"]["X"]
        assert lane["submitted"] == lane["labeled_batches"] == 12
        assert lane["dispatched_batches"] == 12
        assert lane["max_handoff_depth"] <= 2
        assert stats["queue_depth"] == 2
        assert stats["busy_seconds"] >= 0
        assert 0 <= stats["overlap"]
        assert stats["tenants"] == 1
        pool = stats["pool"]
        assert pool["threads"] == pool["label_workers"] + pool["dispatch_workers"]
        assert 1 <= pool["max_label_active"] <= pool["label_workers"]
        assert 1 <= pool["max_dispatch_active"] <= pool["dispatch_workers"]

    def test_try_submit_returns_none_on_full_lane_then_recovers(self):
        # the serving tier's bridge depends on this exact contract:
        # a full ingress yields None (never blocks), and room freed by
        # the label worker makes the same offer succeed
        entered = threading.Event()
        release = threading.Event()

        def label(app, item):
            entered.set()
            assert release.wait(WAIT)
            return item

        ex = StagedExecutor(
            label, lambda app, item: item, queue_depth=1, label_workers=1
        )
        try:
            held = ex.submit("X", 0)
            assert entered.wait(WAIT)  # worker holds item 0, blocked
            queued = ex.try_submit("X", 1)  # fills the depth-1 ingress
            assert queued is not None
            assert ex.try_submit("X", 2) is None  # full: refused, no block
            release.set()
            assert held.result(WAIT) == 0
            assert queued.result(WAIT) == 1
            late = ex.try_submit("X", 3)
            assert late is not None
            assert late.result(WAIT) == 3
        finally:
            release.set()
            ex.close()

    def test_try_submit_after_close_raises(self):
        ex = StagedExecutor(lambda a, i: i, lambda a, i: i)
        ex.close()
        with pytest.raises(ServiceError):
            ex.try_submit("X", 1)

    def test_done_callback_fires_exactly_once_either_side_of_done(self):
        calls: list[tuple[str, bool]] = []
        with StagedExecutor(lambda a, i: i, lambda a, i: i) as ex:
            future = ex.submit("X", 7)
            future.add_done_callback(
                lambda f: calls.append(("early", f.done()))
            )
            assert future.result(WAIT) == 7
            future.add_done_callback(
                lambda f: calls.append(("late", f.done()))
            )
        assert sorted(calls) == [("early", True), ("late", True)]

    def test_done_callback_fires_on_failed_future_too(self):
        def dispatch(app, item):
            raise RuntimeError("db down")

        seen: list = []
        with StagedExecutor(lambda a, i: i, dispatch) as ex:
            future = ex.submit("X", 1)
            future.add_done_callback(lambda f: seen.append(f))
            with pytest.raises(RuntimeError):
                future.result(WAIT)
        assert seen == [future]
        assert future.done()

    def test_done_callback_exception_does_not_break_resolution(self):
        def bad_callback(_f):
            raise ValueError("observer bug")

        with StagedExecutor(lambda a, i: i, lambda a, i: i) as ex:
            future = ex.submit("X", 5)
            future.add_done_callback(bad_callback)
            # the observer's failure stays the observer's problem
            assert future.result(WAIT) == 5

    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(ServiceError):
            StagedExecutor(lambda a, i: i, lambda a, i: i, queue_depth=0)

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ServiceError):
            StagedExecutor(lambda a, i: i, lambda a, i: i, label_workers=0)
        with pytest.raises(ServiceError):
            StagedExecutor(lambda a, i: i, lambda a, i: i, dispatch_workers=0)


class TestSharedStagePool:
    """The many-tenant properties of the shared pool scheduler."""

    @pytest.fixture(autouse=True)
    def _hygiene(self, no_thread_leaks):
        yield

    def test_thread_count_tracks_pool_size_not_tenants(self):
        """32 tenants on a (2, 3) pool: exactly 5 worker threads."""
        def worker_threads():
            return [
                t
                for t in threading.enumerate()
                if t.name.startswith(("querc-label-", "querc-dispatch-"))
            ]

        assert worker_threads() == []
        with StagedExecutor(
            lambda app, item: item,
            lambda app, item: item,
            label_workers=2,
            dispatch_workers=3,
        ) as ex:
            results = ex.map(
                [_batch(f"tenant-{i % 32}", i) for i in range(96)]
            )
            assert len(results) == 96
            assert len(worker_threads()) == 5
            stats = ex.stats()
        assert stats["tenants"] == 32
        assert stats["pool"]["threads"] == 5
        assert all(
            lane["labeled_batches"] == 3 for lane in stats["lanes"].values()
        )

    def test_at_most_one_batch_in_flight_per_lane_per_stage(self):
        """A wide pool must never run two batches of one application
        concurrently in the same stage — but it must run different
        applications' batches concurrently (proven with a barrier that
        only a genuinely shared pool can satisfy)."""
        lock = threading.Lock()
        in_label: dict[str, int] = {}
        max_in_label: dict[str, int] = {}
        barrier = threading.Barrier(2)
        first = {"X": True, "Y": True}

        def label(app, item):
            with lock:
                in_label[app] = in_label.get(app, 0) + 1
                max_in_label[app] = max(max_in_label.get(app, 0), in_label[app])
                hit_barrier = first[app]
                first[app] = False
            if hit_barrier:
                # both tenants' first batches must be in stage A at
                # once; per-tenant threads or a serial pool would
                # deadlock here (the timeout turns that into a failure)
                barrier.wait(WAIT)
            with lock:
                in_label[app] -= 1
            return item

        with StagedExecutor(
            label, lambda app, item: item, label_workers=4, dispatch_workers=2
        ) as ex:
            futures = [ex.submit("X" if i % 2 else "Y", i) for i in range(16)]
            [f.result(WAIT) for f in futures]
        assert max_in_label == {"X": 1, "Y": 1}

    def test_blocked_tenant_occupies_at_most_one_worker(self):
        """Tenant X has many queued batches and a stuck stage A; only
        one of the two label workers may be held, so tenant Y's whole
        stream still flows."""
        release = threading.Event()

        def label(app, item):
            if app == "X":
                assert release.wait(WAIT)
            return item

        with StagedExecutor(
            label, lambda app, item: item, label_workers=2, dispatch_workers=2
        ) as ex:
            stuck = [ex.submit("X", i) for i in range(4)]  # queue_depth default
            fast = [ex.submit("Y", i) for i in range(8)]
            assert [f.result(WAIT) for f in fast] == list(range(8))
            assert not any(f.done() for f in stuck)
            release.set()
            assert [f.result(WAIT) for f in stuck] == list(range(4))

    def test_concurrent_close_callers_all_wait_for_the_drain(self):
        """A second close() racing the first must not return before the
        drain finishes — both callers may rely on close()'s guarantees."""
        release = threading.Event()

        def dispatch(app, item):
            assert release.wait(WAIT)
            return item

        ex = StagedExecutor(
            lambda app, item: item, dispatch, label_workers=1, dispatch_workers=1
        )
        future = ex.submit("X", 1)
        closers = [threading.Thread(target=ex.close) for _ in range(2)]
        for t in closers:
            t.start()
        # the batch is stuck in dispatch: neither close() may return yet
        for t in closers:
            t.join(0.2)
        assert all(t.is_alive() for t in closers)
        release.set()
        for t in closers:
            t.join(WAIT)
        assert not any(t.is_alive() for t in closers)
        assert future.result(WAIT) == 1

    def test_hostile_hooks_never_kill_a_worker(self):
        """A tuner/feedback hook raising — even a BaseException — is
        counted per lane; the batch resolves, the pool survives, and
        close() still drains (a dead worker would wedge it)."""

        class Hostile(BaseException):
            pass

        class ExplodingLen:
            def __len__(self):
                raise ValueError("no length for you")

        class ExplodingTuner:
            def observe(self, *args, **kwargs):
                raise Hostile("tuner down")

            def observe_admission(self, *args, **kwargs):
                raise Hostile("tuner down")

        def feedback(app, result):
            raise Hostile("feedback down")

        with StagedExecutor(
            lambda app, item: item,
            lambda app, item: "placed",
            tuner=ExplodingTuner(),
            dispatch_feedback=feedback,
            label_workers=1,
            dispatch_workers=1,
        ) as ex:
            futures = [ex.submit("X", ExplodingLen()) for _ in range(3)]
            assert [f.result(WAIT) for f in futures] == ["placed"] * 3
            lane = ex.stats()["lanes"]["X"]
        # both hooks failed on every batch: tuner on stage A, feedback
        # on stage B — and none of it failed a batch or a worker
        assert lane["feedback_errors"] == 6
        assert lane["dispatched_batches"] == 3

    def test_raising_clock_resolves_the_batch_and_spares_the_worker(self):
        """Even the injected clock blowing up mid-batch must resolve
        that batch's future and leave the pool serving — a dead worker
        would wedge the lane and hang close()."""
        calls = {"n": 0}
        armed = threading.Event()

        def flaky_clock():
            if armed.is_set():
                armed.clear()
                raise RuntimeError("clock down")
            calls["n"] += 1
            return float(calls["n"])

        with StagedExecutor(
            lambda app, item: item,
            lambda app, item: item,
            clock=flaky_clock,
            label_workers=1,
            dispatch_workers=1,
        ) as ex:
            # arm after construction so the failure lands mid-batch (the
            # stage-A timing read), the worst possible spot
            armed.set()
            first = ex.submit("X", 1)
            with pytest.raises(RuntimeError, match="clock down"):
                first.result(WAIT)
            # the worker survived: later batches flow normally
            assert [ex.submit("X", i).result(WAIT) for i in (2, 3)] == [2, 3]
            # ...and the fallback-failed batch is a counted error, so
            # submitted still reconciles with labeled + errors
            lane = ex.stats()["lanes"]["X"]
        assert lane["label_errors"] == 1
        assert lane["submitted"] == lane["labeled_batches"] + lane["label_errors"]

    def test_close_drains_backpressured_lane(self):
        """close() racing a producer blocked on a full ingress: every
        accepted future resolves, the blocked submit raises."""
        gate = threading.Event()

        def label(app, item):
            assert gate.wait(WAIT)
            return item

        ex = StagedExecutor(
            label, lambda app, item: item, queue_depth=1, label_workers=1,
            dispatch_workers=1,
        )
        accepted: list = []
        outcome: dict = {}

        def produce():
            try:
                for i in range(10):
                    accepted.append(ex.submit("X", i))
            except ServiceError:
                outcome["rejected"] = True

        producer = threading.Thread(target=produce)
        producer.start()
        while len(accepted) < 1:  # producer is now blocked on depth-1 ingress
            time.sleep(0.001)
        closer = threading.Thread(target=ex.close)
        closer.start()
        gate.set()  # un-stick stage A so the drain can complete
        producer.join(WAIT)
        closer.join(WAIT)
        assert not producer.is_alive() and not closer.is_alive()
        assert outcome.get("rejected") or len(accepted) == 10
        for i, future in enumerate(accepted):
            assert future.result(WAIT) == i  # drained, in order, no strands

    def test_close_wakes_on_drain_without_polling(self):
        """close()'s drain wait is condition-notified: the moment the
        last outstanding batch resolves, the waiter wakes — no timed
        polling loop — and the worker-exit accounting reaches zero."""
        release = threading.Event()
        finished = {"at": 0.0}

        def dispatch(app, item):
            assert release.wait(WAIT)
            finished["at"] = time.monotonic()
            return item

        ex = StagedExecutor(
            lambda app, item: item, dispatch, label_workers=1, dispatch_workers=1
        )
        assert ex._workers_alive == 2
        future = ex.submit("X", 1)
        closer = threading.Thread(target=ex.close)
        closer.start()
        closer.join(0.2)
        assert closer.is_alive()  # blocked on the outstanding batch
        release.set()
        closer.join(WAIT)
        assert not closer.is_alive()
        assert future.result(WAIT) == 1
        # every worker signed off through _worker_exit on its way out
        assert ex._workers_alive == 0
        assert finished["at"] > 0.0  # the batch genuinely ran during close


# -- service wiring -----------------------------------------------------------


class TestProcessRoutedConcurrent:
    @pytest.fixture(autouse=True)
    def _hygiene(self, no_thread_leaks):
        # process_routed_concurrent closes its executor before returning
        yield

    def _service(self) -> QuercService:
        service = QuercService()
        service.register_backend(NullBackend("DB(X)"))
        service.register_backend(NullBackend("DB(Y)"))
        service.add_application("X", backend="DB(X)")
        service.add_application("Y", backend="DB(Y)")
        return service

    def _batches(self) -> list[StreamBatch]:
        streams = [
            QueryStream("X", _records(40, "x"), batch_size=8),
            QueryStream("Y", _records(24, "y"), batch_size=8),
        ]
        return list(interleave_streams(streams))

    def test_matches_serial_process_routed(self):
        batches = self._batches()
        concurrent = self._service()
        serial = self._service()
        got = concurrent.process_routed_concurrent(batches)
        want = [serial.process_routed(b) for b in batches]
        assert len(got) == len(want) == len(batches)
        for (got_labeled, got_report), (want_labeled, want_report) in zip(
            got, want
        ):
            assert [m.query for m in got_labeled] == [
                m.query for m in want_labeled
            ]
            assert got_report is not None and want_report is not None
            assert got_report.offered == want_report.offered
            assert got_report.admitted == want_report.admitted
            assert got_report.executed_ok == want_report.executed_ok

    def test_stats_carry_executor_and_tuner_sections(self):
        service = self._service()
        assert service.stats()["executor"] is None
        assert service.stats()["tuner"] is None
        service.set_batch_tuner(BatchSizeTuner(initial=8, clock=FakeClock()))
        service.process_routed_concurrent(self._batches())
        stats = service.stats()
        assert set(stats["executor"]["lanes"]) == {"X", "Y"}
        assert stats["executor"]["lanes"]["X"]["labeled_queries"] == 40
        assert set(stats["tuner"]["applications"]) == {"X", "Y"}

    def test_sink_failure_surfaces_after_dispatch_ran(self):
        """The training fork failing must not stop the batch from
        reaching its database — same contract as the serial path."""
        service = self._service()

        def bad_sink(app, labeled):
            raise RuntimeError("training fork down")

        service.application("X").worker.add_sink(bad_sink)
        backend = service.backends.get("DB(X)").backend
        batches = [_batch("X", 0, n=5)]
        with pytest.raises(ServiceError, match="sink"):
            service.process_routed_concurrent(batches)
        assert backend.accepted == 5  # dispatch still happened

    def test_pool_knobs_flow_through_and_undersized_pool_stays_serial_identical(self):
        """One label worker for two tenants: still serial-identical
        results, and the executor stats report the configured pool."""
        batches = self._batches()
        pooled = self._service()
        serial = self._service()
        got = pooled.process_routed_concurrent(
            batches, label_workers=1, dispatch_workers=2
        )
        want = [serial.process_routed(b) for b in batches]
        for (got_labeled, _), (want_labeled, _) in zip(got, want):
            assert [m.query for m in got_labeled] == [
                m.query for m in want_labeled
            ]
        pool = pooled.stats()["executor"]["pool"]
        assert pool["label_workers"] == 1
        assert pool["dispatch_workers"] == 2
        assert pool["max_label_active"] == 1

    def test_worker_state_matches_serial(self):
        batches = self._batches()
        concurrent = self._service()
        serial = self._service()
        concurrent.process_routed_concurrent(batches)
        for b in batches:
            serial.process_routed(b)
        for name in ("X", "Y"):
            got = concurrent.application(name).worker
            want = serial.application(name).worker
            assert got.processed_count == want.processed_count
            assert [m.query for m in got.window] == [m.query for m in want.window]


# -- BatchSizeTuner -----------------------------------------------------------


class TestBatchSizeTuner:
    def test_converges_to_latency_budget(self):
        """Constant per-query cost c: the size settles at ~target/c and
        the expected batch latency lands within the budget."""
        cost = 0.001
        tuner = BatchSizeTuner(
            initial=8,
            min_size=4,
            max_size=512,
            target_seconds=0.05,
            clock=FakeClock(),
        )
        size = tuner.recommend()
        for _ in range(12):
            size = tuner.observe(size, size * cost)
        assert size == 50  # target / cost
        snap = tuner.snapshot()["applications"][""]
        assert snap["expected_batch_seconds"] <= 0.05 + cost
        # steady state: another observation doesn't move it
        assert tuner.observe(size, size * cost) == 50

    def test_reconverges_after_cost_shift(self):
        tuner = BatchSizeTuner(
            initial=32, min_size=4, max_size=512, target_seconds=0.04,
            clock=FakeClock(),
        )
        size = tuner.recommend()
        for _ in range(10):
            size = tuner.observe(size, size * 0.0005)  # cheap: grows
        assert size == 80
        for _ in range(20):
            size = tuner.observe(size, size * 0.004)  # 8x costlier: shrinks
        assert size == 10

    def test_growth_per_step_is_bounded(self):
        tuner = BatchSizeTuner(
            initial=16, max_size=1024, target_seconds=1.0, max_growth=2.0,
            clock=FakeClock(),
        )
        assert tuner.observe(16, 16 * 1e-6) == 32  # ideal is huge; step capped
        assert tuner.recommend() == 32

    def test_shrink_per_step_is_bounded_and_clamped(self):
        tuner = BatchSizeTuner(
            initial=64, min_size=24, max_size=128, target_seconds=0.01,
            max_growth=2.0, clock=FakeClock(),
        )
        assert tuner.observe(64, 64.0) == 32  # one step down, not a cliff
        assert tuner.observe(32, 32.0) == 24  # clamped at min_size

    def test_lanes_are_per_application(self):
        tuner = BatchSizeTuner(
            initial=32, min_size=4, max_size=512, target_seconds=0.05,
            clock=FakeClock(),
        )
        for _ in range(10):
            tuner.observe(tuner.recommend("X"), tuner.recommend("X") * 0.01, "X")
            tuner.observe(tuner.recommend("Y"), tuner.recommend("Y") * 0.0001, "Y")
        assert tuner.recommend("X") == 5  # slow app: small batches
        assert tuner.recommend("Y") == 500  # fast app: big batches
        assert tuner.recommend("Z") == 32  # unseen app: initial

    def test_zero_and_negative_observations_ignored(self):
        tuner = BatchSizeTuner(initial=32, clock=FakeClock())
        assert tuner.observe(0, 1.0) == 32
        assert tuner.observe(10, -1.0) == 32
        assert tuner.snapshot()["applications"] == {}

    def test_observe_stats_uses_label_stage_deltas(self):
        tuner = BatchSizeTuner(
            initial=32, min_size=4, max_size=512, target_seconds=0.05,
            clock=FakeClock(),
        )
        first = {
            "queries": 100,
            "stage_seconds": {"embed": 0.5, "predict": 0.5, "route": 99.0},
        }
        # first call has no baseline: the cumulative totals are the delta
        assert tuner.observe_stats(first) == 16  # 10ms/query, shrink capped
        second = {
            "queries": 200,
            "stage_seconds": {"embed": 0.55, "predict": 0.55, "route": 999.0},
        }
        # delta: 100 queries, 0.1s; ewma-smoothed cost 6.4ms/query
        # -> ideal ~7.8, floored at half the current size
        assert tuner.observe_stats(second) == 8
        assert tuner.snapshot()["applications"][""]["samples"] == 2

    def test_injectable_clock_stamps_observations(self):
        clock = FakeClock()
        tuner = BatchSizeTuner(initial=16, clock=clock)
        clock.advance(123.0)
        tuner.observe(16, 0.01)
        snap = tuner.snapshot()["applications"][""]
        assert snap["last_observed_at"] == 123.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ServiceError):
            BatchSizeTuner(initial=4, min_size=8)
        with pytest.raises(ServiceError):
            BatchSizeTuner(target_seconds=0)
        with pytest.raises(ServiceError):
            BatchSizeTuner(smoothing=0)
        with pytest.raises(ServiceError):
            BatchSizeTuner(max_growth=1.0)


# -- tuner-driven rebatching --------------------------------------------------


class TestRebatchStreams:
    def test_rechunks_interleaved_streams_per_application(self):
        streams = [
            QueryStream("X", _records(25, "x"), batch_size=4),
            QueryStream("Y", _records(10, "y"), batch_size=3),
        ]
        sizes = {"X": 10, "Y": 7}
        out = list(
            rebatch_streams(interleave_streams(streams), lambda app: sizes[app])
        )
        x = [b for b in out if b.application == "X"]
        y = [b for b in out if b.application == "Y"]
        assert [len(b) for b in x] == [10, 10, 5]  # final flush is short
        assert [len(b) for b in y] == [7, 3]
        assert [b.time_step for b in x] == [0, 1, 2]
        assert [b.time_step for b in y] == [0, 1]
        # arrival order within each application is preserved exactly
        assert [r.query for b in x for r in b.records] == [
            r.query for r in _records(25, "x")
        ]
        assert [r.query for b in y for r in b.records] == [
            r.query for r in _records(10, "y")
        ]

    def test_tuner_recommendations_apply_mid_stream(self):
        tuner = BatchSizeTuner(
            initial=5, min_size=2, max_size=64, target_seconds=0.05,
            clock=FakeClock(),
        )
        stream = QueryStream("X", _records(30, "x"), batch_size=6)
        out = []
        for batch in rebatch_streams(stream.batches(), tuner):
            out.append(len(batch))
            # labeling got cheap: the tuner doubles the size (growth cap)
            tuner.observe(len(batch), len(batch) * 1e-4, application="X")
        assert out[0] == 5  # initial
        assert out[1] > out[0]  # adapted while the stream was live
        assert sum(out) == 30

    def test_minimum_size_is_one(self):
        out = list(
            rebatch_streams(
                QueryStream("X", _records(3, "x"), batch_size=3).batches(),
                lambda app: 0,  # degenerate sizer: clamped to 1
            )
        )
        assert [len(b) for b in out] == [1, 1, 1]

"""Unit tests for normalization and templatization."""

from repro.sql.normalizer import (
    NUM_PLACEHOLDER,
    PARAM_PLACEHOLDER,
    STR_PLACEHOLDER,
    normalize,
    templatize,
    token_stream,
)


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize("select  1\n\t,2") == "SELECT 1 , 2"

    def test_uppercases_keywords_only(self):
        out = normalize("select MyCol from MyTable")
        assert out == "SELECT mycol FROM mytable"

    def test_idempotent(self):
        q = "select a, b from t where a > 10 and b = 'x'"
        assert normalize(normalize(q)) == normalize(q)

    def test_case_variants_normalize_identically(self):
        assert normalize("SELECT A FROM T") == normalize("select a from t")


class TestTemplatize:
    def test_numbers_fold(self):
        assert NUM_PLACEHOLDER in templatize("select * from t where a = 42")
        assert "42" not in templatize("select * from t where a = 42")

    def test_strings_fold(self):
        out = templatize("select * from t where s = 'secret'")
        assert STR_PLACEHOLDER in out
        assert "secret" not in out

    def test_parameters_fold(self):
        out = templatize("select * from t where id = :uid")
        assert PARAM_PLACEHOLDER in out

    def test_same_template_different_literals_equal(self):
        a = templatize("select * from t where a = 1 and s = 'x'")
        b = templatize("select * from t where a = 999 and s = 'yyy'")
        assert a == b

    def test_different_templates_differ(self):
        a = templatize("select * from t where a = 1")
        b = templatize("select * from u where a = 1")
        assert a != b


class TestTokenStream:
    def test_fold_literals_default(self):
        tokens = token_stream("select 42, 'x' from t")
        assert NUM_PLACEHOLDER in tokens
        assert STR_PLACEHOLDER in tokens

    def test_unfolded_keeps_literals(self):
        tokens = token_stream("select 42 from t", fold_literals=False)
        assert "42" in tokens

    def test_identifiers_lowercased(self):
        tokens = token_stream("select MyCol from T")
        assert "mycol" in tokens
        assert "t" in tokens

    def test_punctuation_preserved(self):
        tokens = token_stream("select a, b from t")
        assert "," in tokens

"""Unit tests for normalization, templatization and the fingerprint
memo/intern tables behind the columnar hot path."""

import numpy as np

from repro.sql.normalizer import (
    NUM_PLACEHOLDER,
    PARAM_PLACEHOLDER,
    STR_PLACEHOLDER,
    FingerprintInterner,
    FingerprintMemo,
    _fast_folded_stream,
    fingerprint_cache_stats,
    normalize,
    reset_fingerprint_caches,
    safe_token_stream,
    template_fingerprint,
    template_fingerprint_ids,
    templatize,
    token_stream,
)


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize("select  1\n\t,2") == "SELECT 1 , 2"

    def test_uppercases_keywords_only(self):
        out = normalize("select MyCol from MyTable")
        assert out == "SELECT mycol FROM mytable"

    def test_idempotent(self):
        q = "select a, b from t where a > 10 and b = 'x'"
        assert normalize(normalize(q)) == normalize(q)

    def test_case_variants_normalize_identically(self):
        assert normalize("SELECT A FROM T") == normalize("select a from t")


class TestTemplatize:
    def test_numbers_fold(self):
        assert NUM_PLACEHOLDER in templatize("select * from t where a = 42")
        assert "42" not in templatize("select * from t where a = 42")

    def test_strings_fold(self):
        out = templatize("select * from t where s = 'secret'")
        assert STR_PLACEHOLDER in out
        assert "secret" not in out

    def test_parameters_fold(self):
        out = templatize("select * from t where id = :uid")
        assert PARAM_PLACEHOLDER in out

    def test_same_template_different_literals_equal(self):
        a = templatize("select * from t where a = 1 and s = 'x'")
        b = templatize("select * from t where a = 999 and s = 'yyy'")
        assert a == b

    def test_different_templates_differ(self):
        a = templatize("select * from t where a = 1")
        b = templatize("select * from u where a = 1")
        assert a != b


class TestTokenStream:
    def test_fold_literals_default(self):
        tokens = token_stream("select 42, 'x' from t")
        assert NUM_PLACEHOLDER in tokens
        assert STR_PLACEHOLDER in tokens

    def test_unfolded_keeps_literals(self):
        tokens = token_stream("select 42 from t", fold_literals=False)
        assert "42" in tokens

    def test_identifiers_lowercased(self):
        tokens = token_stream("select MyCol from T")
        assert "mycol" in tokens
        assert "t" in tokens

    def test_punctuation_preserved(self):
        tokens = token_stream("select a, b from t")
        assert "," in tokens


class TestFastFoldedScanner:
    CASES = [
        "SELECT a FROM t WHERE x = 5 AND s = 'u''1'",
        "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) "
        "from lineitem where l_shipdate <= '1998-09-02' group by l_orderkey",
        "select * from t where name like '%promo%' and id = $1",
        "update t set a = a || 'x', b = 0x1F, c = 1.5e-3 where d <> :param",
        "select a->>'k', b::int from t where c != ? and d >= %s",
        "select a from t -- trailing comment",
        "select a from t where x = 1 -- no newline at eof",
        "select a, -- mid\n b from t",
        'select "Quoted Col" from t',
        "select `col` from t",
        'select "WHERE" from "My Table" where x = 1',
        "select 'he said \"hi\"' from t",
    ]

    def test_matches_slow_lexer(self):
        for sql in self.CASES:
            fast = _fast_folded_stream(sql)
            assert fast is not None, sql
            assert fast == token_stream(sql, fold_literals=True), sql

    def test_bails_to_none_on_slow_constructs(self):
        # block comments, doubled-quote escapes and non-ASCII need the
        # full lexer; unterminated quotes leave a gap and bail too
        for sql in (
            "select /* hint */ a from t",
            'select "a""b" from t',
            "select `a``b` from t",
            "select a from t where s = 'naïve'",
            'select "broken from t',
            'select "multi\nline" from t',
        ):
            assert _fast_folded_stream(sql) is None, sql

    def test_safe_token_stream_agrees_either_way(self):
        for sql in self.CASES + ["select a from t -- c", "broken ' quote"]:
            try:
                want = token_stream(sql, fold_literals=True)
            except Exception:  # noqa: BLE001 - safe path degrades to split
                want = sql.split()
            assert safe_token_stream(sql, fold_literals=True) == want, sql


class TestFingerprintMemo:
    def test_exact_text_repeats_hit(self):
        memo = FingerprintMemo(capacity=8, interner=FingerprintInterner())
        fp1 = memo.fingerprint("select a from t where x = 1")
        fp2 = memo.fingerprint("select a from t where x = 1")
        assert fp1 == fp2
        stats = memo.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_bounded_lru_eviction(self):
        memo = FingerprintMemo(capacity=2, interner=FingerprintInterner())
        for i in range(3):
            memo.fingerprint(f"select {chr(97 + i)} from t")
        assert len(memo) == 2  # oldest text evicted, never unbounded
        memo.fingerprint("select a from t")  # evicted: recomputes
        assert memo.stats()["misses"] == 4

    def test_fingerprint_ids_share_ids_per_template(self):
        interner = FingerprintInterner()
        memo = FingerprintMemo(capacity=8, interner=interner)
        ids, fps, hits, misses = memo.fingerprint_ids(
            [
                "select a from t where x = 1",
                "select a from t where x = 999",  # same template
                "select a from t where x = 1",  # exact repeat
                "select b from u",
            ]
        )
        assert ids[0] == ids[1] == ids[2] != ids[3]
        assert fps[0] == fps[1] == fps[2]
        # all four probed a cold memo (the repeat is only computed
        # once, but counted at probe time); a second pass all hits
        assert (hits, misses) == (0, 4)
        _, _, hits2, misses2 = memo.fingerprint_ids(
            ["select a from t where x = 1", "select b from u"]
        )
        assert (hits2, misses2) == (2, 0)
        assert len(interner) == 2

    def test_matches_template_fingerprint(self):
        memo = FingerprintMemo(capacity=4, interner=FingerprintInterner())
        q = "select a from t where x = 42"
        assert memo.fingerprint(q) == template_fingerprint(q)


class TestFingerprintInterner:
    def test_overflow_returns_minus_one(self):
        interner = FingerprintInterner(capacity=1)
        ids = interner.intern_many(["fp-a", "fp-a", "fp-b"])
        assert list(ids) == [0, 0, -1]  # table full: fp-b gets no slot
        stats = interner.stats()
        assert stats["size"] == 1 and stats["overflow"] == 1

    def test_ids_are_stable(self):
        interner = FingerprintInterner(capacity=8)
        first = interner.intern_many(["x", "y"])
        again = interner.intern_many(["y", "x"])
        assert list(first) == [0, 1]
        assert list(again) == [1, 0]
        assert isinstance(first, np.ndarray) and first.dtype == np.int64


class TestProcessWideTables:
    def test_template_fingerprint_ids_and_reset(self):
        reset_fingerprint_caches()
        ids, fps, _, _ = template_fingerprint_ids(
            ["select a from t where x = 1", "select a from t where x = 2"]
        )
        assert ids[0] == ids[1]
        assert fps[0] == template_fingerprint("select a from t where x = 3")
        stats = fingerprint_cache_stats()
        assert stats["interner"]["size"] >= 1
        assert stats["memo"]["size"] >= 1
        reset_fingerprint_caches()
        stats = fingerprint_cache_stats()
        assert stats["interner"]["size"] == 0
        assert stats["memo"]["size"] == 0

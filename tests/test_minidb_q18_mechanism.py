"""Focused tests on the full Figure 3/4 mechanism chain.

Each link of the causal chain gets its own test, so a regression in any
one of them points directly at the broken link rather than at a changed
figure.
"""

import pytest

from repro.minidb import Index, IndexAdvisor, IndexConfig
from repro.workloads import generate_tpch_workload


@pytest.fixture(scope="module")
def workload():
    return generate_tpch_workload(instances_per_template=3, seed=7)


@pytest.fixture(scope="module")
def q18(workload):
    return workload[17 * 3]


class TestCausalChain:
    def test_link1_optimizer_underestimates_q18_outer(self, tpch_db, q18):
        """True IN-subquery selectivity dwarfs the optimizer's guess."""
        import re

        threshold = int(re.search(r"> (\d+)\)", q18).group(1))
        survivors = tpch_db.execute(
            "select l_orderkey from lineitem group by l_orderkey "
            f"having sum(l_quantity) > {threshold}"
        ).n_rows
        total_orders = tpch_db.table("orders").n_rows
        true_sel = survivors / total_orders
        from repro.minidb.optimizer import SEMIJOIN_IN_SELECTIVITY

        assert true_sel > 10 * SEMIJOIN_IN_SELECTIVITY

    def test_link2_advisor_tight_budget_picks_narrow_bait(
        self, tpch_db, workload
    ):
        advisor = IndexAdvisor(tpch_db)
        report = advisor.recommend(
            workload,
            3 * 60.0,
            billing_multiplier=38 / 3,
        )
        names = [i.name for i in report.config]
        assert names == ["ix_lineitem_l_orderkey"]

    def test_link3_bait_slows_q18_but_generous_budget_config_does_not(
        self, tpch_db, workload, q18
    ):
        advisor = IndexAdvisor(tpch_db)
        bait = IndexConfig([Index("lineitem", ("l_orderkey",))])
        good = advisor.recommend(
            workload, 30 * 60.0, billing_multiplier=38 / 3
        ).config

        baseline = tpch_db.execute(q18).actual_cost
        baited = tpch_db.execute(q18, bait).actual_cost
        tuned = tpch_db.execute(q18, good).actual_cost
        assert baited > 1.3 * baseline  # the spike
        assert tuned <= baseline * 1.05  # fixed by the richer config

    def test_link4_good_config_helps_whole_workload(self, tpch_db, workload):
        advisor = IndexAdvisor(tpch_db)
        good = advisor.recommend(
            workload, 30 * 60.0, billing_multiplier=38 / 3
        ).config
        plain = sum(tpch_db.execute(q).actual_cost for q in workload)
        tuned = sum(tpch_db.execute(q, good).actual_cost for q in workload)
        assert tuned < 0.85 * plain

"""Unit tests for classical syntactic feature extraction (the baseline)."""

import numpy as np
import pytest

from repro.sql.features import (
    QueryStructure,
    SyntacticFeatureExtractor,
    extract_structure,
)


class TestExtractStructure:
    def test_tables_and_joins(self):
        s = extract_structure(
            "select a from orders, lineitem where o_orderkey = l_orderkey"
        )
        assert s.tables == ("orders", "lineitem")
        assert s.join_edges == (("l_orderkey", "o_orderkey"),)

    def test_group_by_and_aggregates(self):
        s = extract_structure(
            "select a, sum(b), count(*) from t group by a having sum(b) > 1"
        )
        assert s.group_by_columns == ("a",)
        assert "SUM" in s.aggregates and "COUNT" in s.aggregates
        assert s.has_having

    def test_predicate_count(self):
        s = extract_structure(
            "select 1 from t where a > 1 and b = 2 and c like 'x%'"
        )
        assert s.predicate_count == 3

    def test_subquery_count(self):
        s = extract_structure(
            "select 1 from t where a in (select b from u) "
            "and exists (select 1 from v where v.x = t.x)"
        )
        assert s.subquery_count == 2

    def test_limit_captured(self):
        assert extract_structure("select a from t limit 5").limit == 5

    def test_order_by_columns(self):
        s = extract_structure("select a, b from t order by b desc, a")
        assert s.order_by_columns == ("b", "a")


class TestSyntacticFeatureExtractor:
    @pytest.fixture()
    def corpus(self):
        return [
            "select a from orders where o_orderkey = 1",
            "select b from lineitem where l_orderkey = 2",
            "select a, sum(x) from orders, lineitem "
            "where o_orderkey = l_orderkey group by a",
        ] * 3

    def test_fit_transform_shape(self, corpus):
        extractor = SyntacticFeatureExtractor()
        matrix = extractor.fit_transform(corpus)
        assert matrix.shape == (len(corpus), extractor.dimension)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SyntacticFeatureExtractor().transform(["select 1 from t"])

    def test_same_query_same_vector(self, corpus):
        extractor = SyntacticFeatureExtractor().fit(corpus)
        a = extractor.transform([corpus[0]])
        b = extractor.transform([corpus[0]])
        assert np.array_equal(a, b)

    def test_structurally_different_queries_differ(self, corpus):
        extractor = SyntacticFeatureExtractor().fit(corpus)
        vecs = extractor.transform([corpus[0], corpus[2]])
        assert not np.array_equal(vecs[0], vecs[1])

    def test_unparseable_query_degrades_gracefully(self, corpus):
        extractor = SyntacticFeatureExtractor().fit(corpus)
        vec = extractor.transform(["CREATE INDEX foo ON bar (baz)"])
        assert vec.shape == (1, extractor.dimension)
        # only the token-count scalar is populated
        assert vec[0, 0] > 0
        assert np.count_nonzero(vec[0, 1:]) == 0

    def test_vocab_capping(self):
        queries = [f"select c{i} from t{i}" for i in range(100)]
        extractor = SyntacticFeatureExtractor(max_tables=10, max_columns=10)
        extractor.fit(queries)
        assert len(extractor._table_index) <= 10
        assert len(extractor._column_index) <= 10

"""Integration: all 22 TPC-H templates plan and execute on the engine."""

import pytest

from repro.minidb import Index, IndexConfig
from repro.workloads.tpch import TPCH_TEMPLATE_IDS, tpch_query


@pytest.mark.parametrize("template_id", TPCH_TEMPLATE_IDS)
def test_template_executes(tpch_db, template_id):
    sql = tpch_query(template_id, seed=3)
    result = tpch_db.execute(sql)
    assert result.actual_cost > 0
    assert result.n_rows >= 0


@pytest.mark.parametrize("template_id", [1, 3, 4, 6, 12, 14, 18])
def test_template_results_index_invariant(tpch_db, template_id):
    """Indexes change costs, never results."""
    sql = tpch_query(template_id, seed=5)
    config = IndexConfig(
        [
            Index("lineitem", ("l_orderkey",)),
            Index("lineitem", ("l_shipdate", "l_discount", "l_extendedprice",
                               "l_orderkey", "l_quantity")),
            Index("orders", ("o_orderkey",)),
            Index("orders", ("o_orderdate", "o_custkey", "o_orderkey")),
        ]
    )
    plain = tpch_db.execute(sql)
    indexed = tpch_db.execute(sql, config)
    assert plain.columns == indexed.columns
    assert plain.rows == indexed.rows


def test_q1_aggregate_identity(tpch_db):
    """Q1's avg columns must equal sum/count per group."""
    sql = tpch_query(1, seed=9)
    result = tpch_db.execute(sql)
    cols = {c: i for i, c in enumerate(result.columns)}
    for row in result.rows:
        assert row[cols["avg_qty"]] == pytest.approx(
            row[cols["sum_qty"]] / row[cols["count_order"]]
        )


def test_q18_limit_respected(tpch_db):
    result = tpch_db.execute(tpch_query(18, seed=2))
    assert result.n_rows <= 100


def test_workload_is_template_major():
    from repro.workloads import generate_tpch_workload
    from repro.sql.normalizer import templatize

    workload = generate_tpch_workload(instances_per_template=3, seed=0)
    assert len(workload) == 66
    # instances of the same template are contiguous
    templates = [templatize(q) for q in workload]
    for t in range(22):
        block = templates[t * 3 : (t + 1) * 3]
        assert len(set(block)) == 1

"""Concurrency safety of the shared serving state.

The staged executor puts the router, the admission controllers, the
embedding cache, and the pipeline metrics under genuine multi-threaded
load; these tests pin down the invariants that load must never break:
no over-admission past a gate's limit, counters that sum exactly,
and cache/metrics snapshots that stay internally consistent.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backends import (
    Backend,
    BackendRegistry,
    BatchRouter,
    BatchResult,
    NullBackend,
    QueryOutcome,
    SpillPolicy,
)
from repro.core.classifier import QueryClassifier
from repro.core.labeled_query import LabeledQuery
from repro.core.labeler import ClassifierLabeler
from repro.ml.forest import RandomizedForestClassifier
from repro.runtime import EmbeddingCache, InferencePipeline
from repro.sql.normalizer import template_fingerprint

WAIT = 20.0


def make_batch(n: int, tag: str = "") -> list[LabeledQuery]:
    return [LabeledQuery.make(f"select c{i} from t{tag}") for i in range(n)]


class ConcurrencyProbeBackend(Backend):
    """Records the maximum number of concurrent ``execute`` calls."""

    def __init__(self, name: str, gate: threading.Event | None = None) -> None:
        super().__init__(name)
        self._lock = threading.Lock()
        self.active = 0
        self.max_active = 0
        self.executed = 0
        self.entered = threading.Event()
        self._gate = gate

    def execute(self, queries):
        with self._lock:
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        self.entered.set()
        if self._gate is not None:
            assert self._gate.wait(WAIT)
        with self._lock:
            self.active -= 1
            self.executed += len(queries)
        return BatchResult(
            backend=self.name,
            outcomes=tuple(QueryOutcome(query=q, ok=True) for q in queries),
        )


class TestConcurrentDispatch:
    def test_no_over_admission_while_a_batch_is_in_flight(self):
        """Deterministic: thread 1 holds the only slot inside execute;
        a dispatch racing it must be rejected, not co-admitted."""
        registry = BackendRegistry()
        gate = threading.Event()
        backend = ConcurrencyProbeBackend("DB", gate=gate)
        binding = registry.register(backend, max_in_flight=1)
        router = BatchRouter(registry, default_backend="DB")

        first_report = {}

        def dispatch_first():
            first_report["report"] = router.dispatch("X", make_batch(1, "a"))

        t = threading.Thread(target=dispatch_first)
        t.start()
        assert backend.entered.wait(WAIT)  # slot is held, execute blocked
        racing = router.dispatch("X", make_batch(3, "b"))
        assert racing.admitted == 0
        assert racing.rejected == 3
        gate.set()
        t.join(WAIT)
        assert first_report["report"].admitted == 1
        assert first_report["report"].executed_ok == 1
        counters = binding.counters.snapshot()
        assert counters["dispatched"] == 4
        assert counters["admitted"] == 1
        assert counters["rejected"] == 3
        assert counters["executed_ok"] == 1
        assert binding.admission.in_flight == 0
        assert backend.max_active == 1

    def test_many_threads_one_gate_counters_sum_exactly(self):
        registry = BackendRegistry()
        backend = ConcurrencyProbeBackend("DB")
        binding = registry.register(backend, max_in_flight=2)
        router = BatchRouter(registry, default_backend="DB")

        n_threads, per_batch = 8, 5
        reports = [None] * n_threads
        start = threading.Barrier(n_threads)

        def worker(i):
            start.wait(WAIT)
            reports[i] = router.dispatch("X", make_batch(per_batch, str(i)))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)

        assert backend.max_active <= 2  # the gate held under the race
        offered = sum(r.offered for r in reports)
        admitted = sum(r.admitted for r in reports)
        rejected = sum(r.rejected for r in reports)
        assert offered == n_threads * per_batch
        assert admitted + rejected == offered
        counters = binding.counters.snapshot()
        assert counters["dispatched"] == offered
        assert counters["admitted"] == admitted
        assert counters["rejected"] == rejected
        assert counters["executed_ok"] == admitted == backend.executed
        assert binding.admission.in_flight == 0

    def test_concurrent_queue_spill_loses_nothing(self):
        """QUEUE spill under racing dispatches: every message is either
        executed or still parked — none vanish, none double-run."""
        registry = BackendRegistry()
        backend = NullBackend("DB")
        binding = registry.register(
            backend, max_in_flight=3, spill=SpillPolicy.QUEUE, queue_capacity=1000
        )
        router = BatchRouter(registry, default_backend="DB")

        n_threads, per_batch = 6, 10
        start = threading.Barrier(n_threads)

        def worker(i):
            start.wait(WAIT)
            router.dispatch("X", make_batch(per_batch, str(i)))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        # drain whatever remained parked
        while binding.pending_depth:
            router.drain("DB")

        total = n_threads * per_batch
        counters = binding.counters.snapshot()
        assert backend.accepted == total
        assert counters["executed_ok"] == total
        assert counters["rejected"] == 0
        assert binding.admission.in_flight == 0


class TestConcurrentPipeline:
    def _classifiers(self, embedder, corpus, n=3):
        vectors = embedder.transform(corpus)
        out = []
        for i in range(n):
            labels = [
                (int(template_fingerprint(q)[:8], 16) + i) % 4 for q in corpus
            ]
            labeler = ClassifierLabeler(
                RandomizedForestClassifier(n_trees=3, max_depth=6, seed=i)
            )
            labeler.fit(vectors, labels)
            out.append(
                QueryClassifier(f"label_{i}", embedder, labeler, embedder_name="bow")
            )
        return out

    def test_concurrent_run_keeps_cache_and_metrics_consistent(self, fitted_bow):
        corpus = [
            f"select col_{i % 7}, sum(metric_{i % 3}) from table_{i % 5} "
            f"where col_{i % 7} > {i}"
            for i in range(60)
        ]
        classifiers = self._classifiers(fitted_bow, corpus)

        # single-threaded reference labels, on its own pipeline
        # (deterministic embedder, so labels must match across runs)
        reference = {
            m.query: {c.label_name: m.label(c.label_name) for c in classifiers}
            for m in InferencePipeline().run(
                [LabeledQuery.make(q) for q in corpus], classifiers
            )
        }
        pipeline = InferencePipeline(cache=EmbeddingCache(capacity=256))

        n_threads, n_batches = 6, 4
        outputs: list[list[LabeledQuery]] = [[] for _ in range(n_threads)]
        start = threading.Barrier(n_threads)

        def worker(i):
            start.wait(WAIT)
            rng = np.random.default_rng(i)
            for _ in range(n_batches):
                picks = rng.choice(len(corpus), size=20, replace=True)
                batch = [LabeledQuery.make(corpus[j]) for j in picks]
                outputs[i].extend(pipeline.run(batch, classifiers))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)

        # every message got the reference labels, from every thread
        for out in outputs:
            assert len(out) == n_batches * 20
            for message in out:
                assert {
                    c.label_name: message.label(c.label_name)
                    for c in classifiers
                } == reference[message.query]

        metrics = pipeline.metrics.snapshot()
        total = n_threads * n_batches * 20
        assert metrics["queries"] == total
        assert metrics["batches"] == n_threads * n_batches
        # one embedder -> exactly one cache lookup per unique template
        assert (
            metrics["cache_hits"] + metrics["cache_misses"]
            == metrics["unique_templates"]
        )
        cache = pipeline.cache.snapshot()
        assert cache["hits"] == metrics["cache_hits"]
        assert cache["misses"] == metrics["cache_misses"]
        # every distinct template embedded and cached at most... once per
        # race window; never more than once per thread, and all present
        distinct = len({template_fingerprint(q) for q in corpus})
        assert cache["size"] <= distinct
        assert metrics["embedded_templates"] >= distinct - cache["size"]


class TestEmbeddingCacheConcurrency:
    def test_bulk_ops_roundtrip_and_refresh_lru(self):
        cache = EmbeddingCache(capacity=3)
        cache.put_many("e", [(f"fp{i}", np.full(2, float(i))) for i in range(3)])
        got = cache.get_many("e", ["fp0", "missing", "fp2"])
        assert got[1] is None
        assert np.array_equal(got[0], np.zeros(2))
        assert np.array_equal(got[2], np.full(2, 2.0))
        assert cache.hits == 2 and cache.misses == 1
        # fp0 and fp2 were refreshed; inserting one more evicts fp1
        cache.put("e", "fp3", np.full(2, 3.0))
        assert cache.get("e", "fp1") is None
        assert cache.get("e", "fp0") is not None
        assert cache.evictions == 1

    def test_put_many_evicts_in_one_pass(self):
        cache = EmbeddingCache(capacity=2)
        cache.put_many("e", [(f"fp{i}", np.zeros(1)) for i in range(5)])
        assert len(cache) == 2
        assert cache.evictions == 3
        assert ("e", "fp4") in cache and ("e", "fp3") in cache

    def test_cached_rows_are_immutable(self):
        cache = EmbeddingCache(capacity=4)
        source = np.ones(3)
        cache.put_many("e", [("fp", source)])
        source[:] = 99.0  # caller mutating its array must not reach the cache
        (row,) = cache.get_many("e", ["fp"])
        assert np.array_equal(row, np.ones(3))
        try:
            row[0] = 5.0
            raised = False
        except ValueError:
            raised = True
        assert raised

    def test_snapshot_is_internally_consistent_under_load(self):
        cache = EmbeddingCache(capacity=64)
        stop = threading.Event()
        failures: list[str] = []

        def hammer(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                fp = f"fp{rng.integers(0, 200)}"
                if cache.get("e", fp) is None:
                    cache.put("e", fp, np.zeros(4))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = cache.snapshot()
                total = snap["hits"] + snap["misses"]
                expected = snap["hits"] / total if total else 0.0
                if snap["hit_rate"] != expected:
                    failures.append(
                        f"hit_rate {snap['hit_rate']} != {expected} "
                        f"(hits={snap['hits']} misses={snap['misses']})"
                    )
                if snap["size"] > snap["capacity"]:
                    failures.append(f"size {snap['size']} over capacity")
        finally:
            stop.set()
            for t in threads:
                t.join(WAIT)
        assert not failures, failures[:3]

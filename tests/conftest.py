"""Shared fixtures: small-but-real substrates, session-scoped.

Expensive artifacts (database, corpora, fitted embedders) are built
once per session; tests must not mutate them.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.embedding import (
    BagOfTokensEmbedder,
    Doc2VecEmbedder,
    LSTMAutoencoderEmbedder,
)
from repro.minidb import Database, generate_tpch_database
from repro.workloads import (
    SnowSimConfig,
    generate_snowsim_workload,
    generate_tpch_workload,
)


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A small materialized TPC-H database (virtual scale = exec scale)."""
    return generate_tpch_database(exec_scale=0.005, virtual_scale=0.005, seed=42)


@pytest.fixture(scope="session")
def tpch_workload() -> list[str]:
    return generate_tpch_workload(instances_per_template=2, seed=7)


@pytest.fixture(scope="session")
def snowsim_records():
    return generate_snowsim_workload(
        SnowSimConfig(total_queries=1200, seed=5)
    )


@pytest.fixture(scope="session")
def small_corpus() -> list[str]:
    """A tiny deterministic SQL corpus for embedder tests."""
    corpus = []
    for i in range(50):
        corpus.append(
            f"SELECT col_{i % 5}, SUM(metric_{i % 3}) FROM table_{i % 4} "
            f"WHERE col_{i % 5} > {i} GROUP BY col_{i % 5}"
        )
        corpus.append(
            f"SELECT * FROM logs_{i % 3} WHERE ts >= '2020-01-0{i % 9 + 1}' "
            f"LIMIT {i + 1}"
        )
    return corpus


@pytest.fixture(scope="session")
def fitted_doc2vec(small_corpus) -> Doc2VecEmbedder:
    return Doc2VecEmbedder(dimension=16, epochs=5, seed=1).fit(small_corpus)


@pytest.fixture(scope="session")
def fitted_bow(small_corpus, tpch_workload, snowsim_records) -> BagOfTokensEmbedder:
    """A deterministic embedder (row-independent transform), fitted on a
    mixed TPC-H + SnowSim corpus — the runtime-equivalence substrate."""
    corpus = (
        small_corpus
        + tpch_workload
        + [r.query for r in snowsim_records[:300]]
    )
    return BagOfTokensEmbedder(dimension=16, min_count=1, seed=3).fit(corpus)


@pytest.fixture(scope="session")
def fitted_lstm(small_corpus) -> LSTMAutoencoderEmbedder:
    return LSTMAutoencoderEmbedder(
        dimension=16, embed_size=12, epochs=4, batch_size=32, seed=1
    ).fit(small_corpus)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture()
def no_thread_leaks():
    """Fail the test if it leaks live worker threads.

    Snapshots ``threading.enumerate()`` before the test and asserts
    every thread born during it is gone afterwards — the hygiene
    contract for everything that owns a pool (the staged executor's
    stage workers, the router's fan-out pool): ``close()`` must join
    its threads, not abandon daemons. A short grace period absorbs
    workers that are mid-exit when the test body returns.
    """
    # snapshot thread objects, not idents — the OS recycles idents, and
    # a recycled ident would mask a genuine leak
    before = set(threading.enumerate())
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked = [
            t
            for t in threading.enumerate()
            if t not in before and t.is_alive()
        ]
        if not leaked or time.monotonic() > deadline:
            break
        time.sleep(0.01)
    assert not leaked, (
        "test leaked worker threads (close() must join them): "
        + ", ".join(repr(t.name) for t in leaked)
    )


@pytest.fixture()
def run_async(no_thread_leaks):
    """Run a coroutine on a fresh event loop with leak hygiene.

    The serving-tier counterpart of ``no_thread_leaks`` (which it
    extends — thread checks apply too): after the coroutine finishes,
    every asyncio task spawned during the test must already be done —
    a session task or client reader still pending means some
    ``close()``/``stop()`` path abandoned it. Checked *inside* the
    loop, because ``asyncio.run`` would cancel (and so mask) the
    leftovers on its way out.
    """

    def _run(coro):
        async def _checked():
            try:
                return await coro
            finally:
                # one tick so just-finished tasks' done-callbacks run
                await asyncio.sleep(0)
                current = asyncio.current_task()
                leaked = [
                    t
                    for t in asyncio.all_tasks()
                    if t is not current and not t.done()
                ]
                assert not leaked, (
                    "test leaked asyncio tasks (stop()/close() must "
                    "await them): "
                    + ", ".join(repr(t.get_name()) for t in leaked)
                )

        return asyncio.run(_checked())

    return _run

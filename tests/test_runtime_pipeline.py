"""Tests for the vectorized inference runtime.

Covers the satellite checklist: cache eviction at capacity, hit/miss
accounting, dedup correctness on batches with repeated templates, and
equivalence (pipeline output == legacy per-classifier output) on a
mixed TPC-H/SnowSim batch — plus the Qworker sink fan-out hardening.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LabeledQuery, QuercService, QueryClassifier, QWorker
from repro.core.labeler import ClassifierLabeler
from repro.errors import EmbeddingError, ServiceError
from repro.ml.forest import RandomizedForestClassifier
from repro.runtime import EmbeddingCache, InferencePipeline, RuntimeMetrics
from repro.sql.normalizer import template_fingerprint
from repro.workloads.stream import QueryStream


class CountingEmbedder:
    """Delegating wrapper that records every ``transform`` invocation."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.calls: list[list[str]] = []

    def transform(self, queries):
        self.calls.append(list(queries))
        return self.inner.transform(queries)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class QuantizedEmbedder:
    """Rounds vectors to 9 decimals so exact-equivalence assertions are
    immune to BLAS batch-shape rounding jitter (~1e-16): the legacy and
    pipeline paths transform different batch shapes."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def transform(self, queries):
        return np.round(self.inner.transform(queries), 9)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _make_classifier(label_name, embedder, train_queries, labels, seed=0):
    labeler = ClassifierLabeler(
        RandomizedForestClassifier(n_trees=4, max_depth=8, seed=seed)
    )
    labeler.fit(embedder.transform(train_queries), labels)
    return QueryClassifier(label_name, embedder, labeler)


# -- the cache --------------------------------------------------------------------


class TestEmbeddingCache:
    def test_eviction_at_capacity(self):
        cache = EmbeddingCache(capacity=2)
        for i in range(3):
            cache.put("e", f"fp{i}", np.full(4, float(i)))
        assert len(cache) == 2
        assert cache.get("e", "fp0") is None  # LRU entry evicted
        assert cache.get("e", "fp2") is not None
        assert cache.evictions == 1

    def test_lru_refresh_on_get(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("e", "a", np.zeros(2))
        cache.put("e", "b", np.ones(2))
        cache.get("e", "a")  # refresh a; b becomes LRU
        cache.put("e", "c", np.full(2, 2.0))
        assert cache.get("e", "b") is None
        assert cache.get("e", "a") is not None

    def test_hit_miss_accounting(self):
        cache = EmbeddingCache(capacity=8)
        assert cache.hit_rate == 0.0
        cache.put("e", "x", np.zeros(2))
        assert cache.get("e", "x") is not None
        assert cache.get("e", "ghost") is None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_keys_are_namespaced_by_embedder(self):
        cache = EmbeddingCache(capacity=8)
        cache.put("e1", "fp", np.zeros(2))
        assert cache.get("e2", "fp") is None

    def test_cached_vectors_are_frozen(self):
        cache = EmbeddingCache(capacity=2)
        source = np.ones(3)
        cache.put("e", "fp", source)
        source[0] = 99.0  # caller mutation must not leak into the cache
        vec = cache.get("e", "fp")
        assert vec[0] == 1.0
        with pytest.raises(ValueError):
            vec[0] = 5.0

    def test_get_many_vectors_are_frozen(self):
        """Aliasing regression: batch lookups return the same frozen
        rows as ``get`` — a caller scribbling on a returned vector must
        raise instead of silently corrupting every future hit."""
        cache = EmbeddingCache(capacity=8)
        cache.put_many("e", [("a", np.ones(3)), ("b", np.full(3, 2.0))])
        got_a, got_b, ghost = cache.get_many("e", ["a", "b", "ghost"])
        assert ghost is None
        assert (cache.hits, cache.misses) == (2, 1)
        for vec in (got_a, got_b):
            with pytest.raises(ValueError):
                vec[0] = 99.0
        assert cache.get("e", "a")[0] == 1.0

    def test_matrix_lane_roundtrip(self):
        cache = EmbeddingCache(capacity=64)
        ids = np.array([3, 7, 1], dtype=np.int64)
        stored = np.arange(6, dtype=np.float64).reshape(3, 2)
        cache.put_matrix("e", ids, stored)
        out, miss = cache.get_matrix("e", np.array([1, 3, 5, 7]), dimension=2)
        assert list(miss) == [False, False, True, False]
        assert np.array_equal(out[0], stored[2])
        assert np.array_equal(out[1], stored[0])
        assert np.array_equal(out[3], stored[1])
        # returned rows are fresh copies: mutating them can't poison the lane
        out[1][:] = -1.0
        again, _ = cache.get_matrix("e", np.array([3]), dimension=2)
        assert np.array_equal(again[0], stored[0])

    def test_matrix_negative_ids_never_cached(self):
        """-1 means "no intern slot": such templates always miss and
        put_matrix drops them instead of storing under a bogus row."""
        cache = EmbeddingCache(capacity=64)
        cache.put_matrix("e", np.array([-1, 2]), np.ones((2, 2)))
        out, miss = cache.get_matrix("e", np.array([-1, 2]), dimension=2)
        assert list(miss) == [True, False]
        assert cache.snapshot()["matrix_rows"] == 1

    def test_matrix_lane_eviction_spares_the_writer(self):
        """Whole-lane LRU: when combined occupancy exceeds capacity the
        least-recently-used *other* lane goes; the lane just written
        (this batch's working set) survives."""
        cache = EmbeddingCache(capacity=4)
        cache.put_matrix("old", np.arange(3), np.zeros((3, 2)))
        cache.put_matrix("new", np.arange(3), np.ones((3, 2)))
        snap = cache.snapshot()
        assert snap["matrix_lanes"] == 1
        assert cache.evictions == 3
        _, miss = cache.get_matrix("new", np.arange(3), dimension=2)
        assert not miss.any()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ServiceError):
            EmbeddingCache(capacity=0)


# -- template fingerprints ---------------------------------------------------------


class TestTemplateFingerprint:
    def test_literals_fold_together(self):
        a = template_fingerprint("SELECT a FROM t WHERE x = 5 AND s = 'u1'")
        b = template_fingerprint("select A  from T where x = 999 and s='other'")
        assert a == b

    def test_structure_distinguishes(self):
        a = template_fingerprint("SELECT a FROM t")
        b = template_fingerprint("SELECT a, b FROM t")
        assert a != b

    def test_total_on_garbage(self):
        fp = template_fingerprint("garbage ~~ %% not sql at all ♞")
        assert isinstance(fp, str) and fp
        assert fp == template_fingerprint("garbage ~~ %% not sql at all ♞")


# -- the pipeline ------------------------------------------------------------------


class TestPipelineDedup:
    def test_one_transform_over_unique_templates_only(self, fitted_bow):
        counting = CountingEmbedder(fitted_bow)
        pipe = InferencePipeline()
        templates = [
            "SELECT a FROM t WHERE x = {}",
            "SELECT b, c FROM u WHERE y < {} LIMIT {}",
            "SELECT count(*) FROM v GROUP BY z HAVING count(*) > {}",
        ]
        batch = [templates[i % 3].format(i, i + 1) for i in range(30)]
        vectors = pipe.embed(counting, batch)

        assert len(counting.calls) == 1  # exactly one transform call
        assert len(counting.calls[0]) == 3  # over unique templates only
        assert vectors.shape == (30, fitted_bow.dimension)
        # deterministic embedder: dedup must be invisible in the output
        # (allclose, not equal: BLAS rounding differs by batch shape)
        np.testing.assert_allclose(
            vectors, fitted_bow.transform(batch), rtol=0, atol=1e-12
        )
        assert pipe.metrics.dedup_ratio == pytest.approx(1 - 3 / 30)

    def test_second_batch_served_from_cache(self, fitted_bow):
        counting = CountingEmbedder(fitted_bow)
        pipe = InferencePipeline()
        batch = ["SELECT a FROM t WHERE x = 1", "SELECT b FROM u WHERE y = 2"]
        first = pipe.embed(counting, batch)
        second = pipe.embed(counting, batch)

        assert len(counting.calls) == 1  # nothing re-embedded
        np.testing.assert_array_equal(first, second)
        assert pipe.metrics.cache_hits == 2
        assert pipe.metrics.cache_misses == 2
        assert pipe.metrics.cache_hit_rate == pytest.approx(0.5)

    def test_run_embeds_once_per_distinct_embedder(
        self, fitted_bow, snowsim_records
    ):
        train = snowsim_records[:100]
        queries = [r.query for r in train]
        counting = CountingEmbedder(fitted_bow)
        classifiers = [
            _make_classifier("user", counting, queries, [r.user for r in train]),
            _make_classifier("account", counting, queries, [r.account for r in train]),
            _make_classifier("cluster", counting, queries, [r.cluster for r in train]),
        ]
        counting.calls.clear()  # drop the fit-time transforms

        pipe = InferencePipeline()
        batch = [LabeledQuery.make(r.query) for r in snowsim_records[100:180]]
        labeled = pipe.run(batch, classifiers)

        assert len(counting.calls) == 1  # 3 classifiers, 1 shared embedder
        assert len(labeled) == len(batch)
        assert all(
            m.has_label("user") and m.has_label("account") and m.has_label("cluster")
            for m in labeled
        )
        assert pipe.metrics.transform_calls == 1
        assert pipe.metrics.batches == 1

    def test_run_with_two_embedders_transforms_each_once(
        self, fitted_bow, fitted_doc2vec, snowsim_records
    ):
        train = snowsim_records[:60]
        queries = [r.query for r in train]
        bow = CountingEmbedder(fitted_bow)
        d2v = CountingEmbedder(fitted_doc2vec)
        classifiers = [
            _make_classifier("user", bow, queries, [r.user for r in train]),
            _make_classifier("account", bow, queries, [r.account for r in train]),
            _make_classifier("cluster", d2v, queries, [r.cluster for r in train]),
        ]
        bow.calls.clear()
        d2v.calls.clear()

        pipe = InferencePipeline()
        batch = [LabeledQuery.make(r.query) for r in snowsim_records[60:100]]
        pipe.run(batch, classifiers)
        assert len(bow.calls) == 1
        assert len(d2v.calls) == 1

    def test_empty_batch_and_no_classifiers(self, fitted_bow):
        pipe = InferencePipeline()
        assert pipe.run([], []) == []
        batch = [LabeledQuery.make("SELECT 1")]
        assert pipe.run(batch, []) == batch
        assert pipe.embed(fitted_bow, []).shape == (0, fitted_bow.dimension)
        # none of the above did inference; metrics must not drift
        assert pipe.metrics.batches == 0
        assert pipe.metrics.queries == 0
        assert pipe.metrics.dedup_ratio == 0.0

    def test_refit_invalidates_cached_vectors(self, small_corpus):
        """A refit embedder must not serve vectors from its old fit."""
        from repro.embedding import BagOfTokensEmbedder

        emb = BagOfTokensEmbedder(dimension=8, min_count=1, seed=1)
        emb.fit(small_corpus[:40])
        pipe = InferencePipeline()
        q = ["SELECT col_1 FROM table_1 WHERE col_1 > 3"]
        stale = pipe.embed(emb, q)

        emb.fit(small_corpus[40:] + ["SELECT new_col FROM new_table"])
        fresh = pipe.embed(emb, q)
        np.testing.assert_array_equal(fresh, emb.transform(q))
        assert not np.array_equal(stale, fresh)
        assert pipe.metrics.cache_hits == 0  # generation changed: miss

    def test_dead_embedder_namespace_never_reused(self, small_corpus):
        """After an embedder is garbage-collected, a fresh same-class
        embedder must not hit the dead one's cache entries."""
        import gc

        from repro.embedding import BagOfTokensEmbedder

        pipe = InferencePipeline()
        q = ["SELECT col_1 FROM table_1 WHERE col_1 > 3"]
        emb_a = BagOfTokensEmbedder(dimension=8, min_count=1, seed=1).fit(
            small_corpus[:40]
        )
        pipe.embed(emb_a, q)
        del emb_a
        gc.collect()
        emb_b = BagOfTokensEmbedder(dimension=8, min_count=1, seed=2).fit(
            small_corpus[40:]
        )
        vectors = pipe.embed(emb_b, q)
        np.testing.assert_array_equal(vectors, emb_b.transform(q))

    def test_same_named_embedders_do_not_collide(self, small_corpus):
        from repro.embedding import BagOfTokensEmbedder

        e1 = BagOfTokensEmbedder(dimension=8, min_count=1, seed=1).fit(small_corpus)
        e2 = BagOfTokensEmbedder(dimension=8, min_count=1, seed=2).fit(small_corpus)
        pipe = InferencePipeline()
        q = ["SELECT col_1 FROM table_1 WHERE col_1 > 7"]
        v1 = pipe.embed(e1, q)  # both claim the class name...
        v2 = pipe.embed(e2, q)  # ...but must get distinct cache rows
        np.testing.assert_array_equal(v1, e1.transform(q))
        np.testing.assert_array_equal(v2, e2.transform(q))

    def test_unweakrefable_embedder_bypasses_cache(self, fitted_bow):
        """An embedder that can't be weak-referenced is embedded
        correctly but must not pollute the shared LRU."""

        class SlotsEmbedder:  # no __weakref__, delegates to a real embedder
            __slots__ = ("inner",)

            def __init__(self, inner):
                self.inner = inner

            def __getattr__(self, name):
                return getattr(self.inner, name)

        emb = SlotsEmbedder(fitted_bow)
        pipe = InferencePipeline()
        q = ["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2"]
        v = pipe.embed(emb, q)
        np.testing.assert_allclose(
            v, fitted_bow.transform(q), rtol=0, atol=1e-12
        )
        assert len(pipe.cache) == 0  # nothing inserted under dead namespaces
        assert pipe.metrics.transform_calls == 1  # dedup still applied
        assert pipe.metrics.unique_templates == 1

    def test_pipelines_sharing_a_cache_do_not_collide(self, small_corpus):
        """Namespaces are process-unique, so two pipelines over one
        cache can never serve each other's embedders' vectors."""
        from repro.embedding import BagOfTokensEmbedder

        cache = EmbeddingCache()
        p1 = InferencePipeline(cache=cache)
        p2 = InferencePipeline(cache=cache)
        e1 = BagOfTokensEmbedder(dimension=8, min_count=1, seed=1).fit(small_corpus)
        e2 = BagOfTokensEmbedder(dimension=8, min_count=1, seed=2).fit(small_corpus)
        q = ["SELECT col_1 FROM table_1 WHERE col_1 > 7"]
        v1 = p1.embed(e1, q)
        v2 = p2.embed(e2, q)
        np.testing.assert_array_equal(v1, e1.transform(q))
        np.testing.assert_array_equal(v2, e2.transform(q))


class TestVectorsInEntryPoints:
    def test_predict_vectors_matches_predict(self, fitted_bow, snowsim_records):
        train = snowsim_records[:80]
        queries = [r.query for r in train]
        clf = _make_classifier("user", fitted_bow, queries, [r.user for r in train])
        probe = [r.query for r in snowsim_records[80:100]]
        vectors = fitted_bow.transform(probe)
        assert clf.predict_vectors(vectors) == clf.predict(probe)

    def test_validate_vectors_rejects_wrong_shape(self, fitted_bow):
        with pytest.raises(EmbeddingError):
            fitted_bow.validate_vectors(np.zeros((3, fitted_bow.dimension + 1)))
        with pytest.raises(EmbeddingError):
            fitted_bow.validate_vectors(np.zeros(fitted_bow.dimension))

    def test_custom_tokenize_keys_the_cache(self, small_corpus):
        """Fingerprints derive from ``self.tokenize``: overriding just
        the tokenizer is enough to keep cache keys matched to exactly
        what this embedder's transform consumes."""
        from repro.embedding import BagOfTokensEmbedder

        class RawTextEmbedder(BagOfTokensEmbedder):
            @staticmethod
            def tokenize(query):
                return query.split()  # keeps literals

        emb = RawTextEmbedder(dimension=8, min_count=1).fit(small_corpus)
        pipe = InferencePipeline()
        q1 = "SELECT col_1 FROM table_1 WHERE col_1 > 5"
        q2 = "SELECT col_1 FROM table_1 WHERE col_1 > 99"
        vectors = pipe.embed(emb, [q1, q2])
        # template_fingerprint would collapse q1/q2; the derived key must not
        assert pipe.metrics.unique_templates == 2
        assert emb.fingerprint(q1) != emb.fingerprint(q2)
        np.testing.assert_allclose(
            vectors, emb.transform([q1, q2]), rtol=0, atol=1e-12
        )


# -- equivalence with the legacy path ----------------------------------------------


class TestLegacyEquivalence:
    def test_pipeline_matches_per_classifier_path_on_mixed_batch(
        self, fitted_bow, tpch_workload, snowsim_records
    ):
        """Pipeline labels == legacy labels on a TPC-H + SnowSim mix.

        Uses the deterministic bag-of-tokens embedder so the comparison
        is exact (Doc2Vec's stochastic inference draws a fresh vector
        per call even on the legacy path)."""
        embedder = QuantizedEmbedder(fitted_bow)
        train = snowsim_records[:200]
        queries = [r.query for r in train]
        classifiers = [
            _make_classifier("user", embedder, queries, [r.user for r in train]),
            _make_classifier(
                "account", embedder, queries, [r.account for r in train], seed=1
            ),
            _make_classifier(
                "cluster", embedder, queries, [r.cluster for r in train], seed=2
            ),
        ]
        mixed = tpch_workload[:30] + [r.query for r in snowsim_records[200:260]]
        # interleave duplicates so the batch has repeated templates
        mixed = mixed + mixed[:40]
        batch = [LabeledQuery.make(q) for q in mixed]

        legacy = list(batch)
        for classifier in classifiers:
            legacy = classifier.label_batch(legacy)

        piped = InferencePipeline().run(batch, classifiers)

        assert len(piped) == len(legacy)
        for a, b in zip(piped, legacy):
            assert a.query == b.query
            assert dict(a.labels) == dict(b.labels)


# -- worker + service integration --------------------------------------------------


class TestQWorkerSinkFanOut:
    def _worker(self):
        worker = QWorker("W")
        seen: list[str] = []
        worker.add_sink(lambda app, batch: seen.append("first"))

        def exploding(app, batch):
            raise RuntimeError("sink down")

        worker.add_sink(exploding)
        worker.add_sink(lambda app, batch: seen.append("last"))
        return worker, seen

    def test_all_sinks_receive_despite_failure(self):
        worker, seen = self._worker()
        batch = [LabeledQuery.make("SELECT 1")]
        with pytest.raises(ServiceError) as err:
            worker.process_batch(batch)
        assert seen == ["first", "last"]  # later sinks still delivered
        assert "1 of 3 sink(s) failed" in str(err.value)
        assert worker.processed_count == 1  # batch was fully processed

    def test_no_error_when_all_sinks_healthy(self):
        worker = QWorker("W")
        got: list[int] = []
        worker.add_sink(lambda app, batch: got.append(len(batch)))
        out = worker.process_batch([LabeledQuery.make("SELECT 1")] * 3)
        assert got == [3] and len(out) == 3

    def test_multiple_failures_aggregate_into_one_error(self):
        worker = QWorker("W")

        def boom_a(app, batch):
            raise RuntimeError("sink A down")

        def boom_b(app, batch):
            raise ValueError("sink B confused")

        delivered: list[str] = []
        worker.add_sink(boom_a)
        worker.add_sink(lambda app, batch: delivered.append(app))
        worker.add_sink(boom_b)
        with pytest.raises(ServiceError) as err:
            worker.process_batch([LabeledQuery.make("SELECT 1")])
        message = str(err.value)
        assert "2 of 3 sink(s) failed" in message
        # each failure is named with its type and detail
        assert "RuntimeError: sink A down" in message
        assert "ValueError: sink B confused" in message
        # the first underlying failure is kept as the cause chain
        assert isinstance(err.value.__cause__, RuntimeError)
        assert delivered == ["W"]  # healthy sink between failures delivered

    def test_state_updated_despite_sink_failure(self):
        worker = QWorker("W", window_size=8)

        def boom(app, batch):
            raise RuntimeError("down")

        worker.add_sink(boom)
        with pytest.raises(ServiceError):
            worker.process_batch([LabeledQuery.make("SELECT 1")] * 3)
        assert worker.processed_count == 3
        assert len(worker.recent(3)) == 3  # window kept the batch

    def test_dispatch_runs_despite_sink_failure(self):
        worker = QWorker("W")
        dispatched: list[int] = []
        worker.set_dispatcher(lambda labeled: dispatched.append(len(labeled)))

        def boom(app, batch):
            raise RuntimeError("down")

        worker.add_sink(boom)
        with pytest.raises(ServiceError):
            worker.process_batch([LabeledQuery.make("SELECT 1")] * 2)
        # the database-bound path is not dropped by a fork failure
        assert dispatched == [2]

    def test_dispatch_failure_does_not_eat_sink_errors(self):
        worker = QWorker("W")

        def boom_sink(app, batch):
            raise RuntimeError("training sink down")

        def boom_dispatch(labeled):
            raise ValueError("backend gone")

        worker.add_sink(boom_sink)
        worker.set_dispatcher(boom_dispatch)
        with pytest.raises(ServiceError) as err:
            worker.process_batch([LabeledQuery.make("SELECT 1")])
        message = str(err.value)
        assert "RuntimeError: training sink down" in message
        assert "dispatch failed" in message
        assert "ValueError: backend gone" in message
        # the first chronological failure (the sink) is the cause
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_dispatch_failure_alone_surfaces(self):
        worker = QWorker("W")

        def boom_dispatch(labeled):
            raise ValueError("backend gone")

        worker.set_dispatcher(boom_dispatch)
        with pytest.raises(ServiceError) as err:
            worker.process_batch([LabeledQuery.make("SELECT 1")])
        assert "dispatch failed" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)
        assert worker.last_dispatch is None  # nothing stale left behind

    def test_forked_mode_skips_dispatcher(self):
        worker = QWorker("W", forward_to_database=False)
        dispatched: list[int] = []
        worker.set_dispatcher(lambda labeled: dispatched.append(len(labeled)))
        out = worker.process_batch([LabeledQuery.make("SELECT 1")])
        assert out == []
        assert dispatched == []


class TestQWorkerEmptyBatch:
    def test_empty_batch_short_circuits(self):
        worker = QWorker("W")
        sunk: list[int] = []
        worker.add_sink(lambda app, batch: sunk.append(len(batch)))
        dispatched: list[int] = []
        worker.set_dispatcher(lambda labeled: dispatched.append(len(labeled)))
        assert worker.process_batch([]) == []
        assert sunk == []  # no sink fan-out for zero queries
        assert dispatched == []  # no dispatch either
        assert worker.processed_count == 0
        # zero-cost metrics: the pipeline never ran
        snap = worker.pipeline.metrics.snapshot()
        assert snap["batches"] == 0
        assert snap["queries"] == 0
        assert all(v == 0.0 for v in snap["stage_seconds"].values())


class TestServiceRuntimeStats:
    def test_stats_report_cache_hits_and_dedup(self, fitted_bow, snowsim_records):
        service = QuercService(n_folds=3, seed=0)
        service.embedders.register("shared-bow", fitted_bow)
        service.add_application("X")
        service.import_logs("X", snowsim_records[:200])
        service.train_and_deploy("X", label_name="user", embedder_name="shared-bow")
        service.train_and_deploy("X", label_name="account", embedder_name="shared-bow")

        stream = QueryStream("X", snowsim_records[200:280], batch_size=20)
        for batch in stream.batches():
            out = service.process(batch)
            assert [m.query for m in out] == batch.queries()  # order kept
            assert all(m.has_label("user") and m.has_label("account") for m in out)
        # replay: every template now comes from the cache
        for batch in stream.batches():
            service.process(batch)

        stats = service.stats()
        runtime = stats["runtime"]
        assert runtime["batches"] == 8
        assert runtime["queries"] == 160
        assert runtime["cache_hit_rate"] > 0
        assert runtime["transform_calls"] >= 1
        assert 0.0 <= runtime["dedup_ratio"] <= 1.0
        assert runtime["cache"]["size"] == len(service.runtime.cache)
        assert stats["applications"]["X"]["processed"] == 160
        assert stats["applications"]["X"]["backend"] is None  # unbound app
        assert stats["backends"] == {}  # none registered
        assert set(runtime["stage_seconds"]) >= {
            "fingerprint", "dedup", "embed", "predict", "scatter",
        }

    def test_workers_share_one_pipeline(self, fitted_bow):
        service = QuercService()
        a = service.add_application("A")
        b = service.add_application("B")
        assert a.worker.pipeline is service.runtime
        assert b.worker.pipeline is service.runtime


class TestRuntimeMetrics:
    def test_stage_timer_accumulates(self):
        metrics = RuntimeMetrics()
        with metrics.stage("embed"):
            pass
        with metrics.stage("embed"):
            pass
        assert metrics.stage_seconds["embed"] >= 0.0
        snap = metrics.snapshot()
        assert snap["batches"] == 0
        metrics.reset()
        assert metrics.snapshot()["stage_seconds"]["embed"] == 0.0

    def test_ratios_safe_on_empty(self):
        metrics = RuntimeMetrics()
        assert metrics.dedup_ratio == 0.0
        assert metrics.cache_hit_rate == 0.0

    def test_add_rejects_unknown_counter(self):
        with pytest.raises(KeyError):
            RuntimeMetrics().add(no_such_counter=1)

    def test_reset_keeps_routing_stage_keys(self):
        metrics = RuntimeMetrics()
        with metrics.stage("route"):
            pass
        metrics.reset()
        stage_seconds = metrics.snapshot()["stage_seconds"]
        assert stage_seconds["route"] == 0.0
        assert stage_seconds["execute"] == 0.0

    def test_concurrent_aggregation_is_exact(self):
        """Racing add()/stage() calls from many threads lose nothing."""
        import threading

        metrics = RuntimeMetrics()
        n_threads, iterations = 8, 500

        def hammer():
            for _ in range(iterations):
                metrics.add(batches=1, queries=3, cache_hits=2, cache_misses=1)
                with metrics.stage("embed"):
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        total = n_threads * iterations
        assert snap["batches"] == total
        assert snap["queries"] == 3 * total
        assert snap["cache_hits"] == 2 * total
        assert snap["cache_misses"] == 1 * total
        assert snap["cache_hit_rate"] == pytest.approx(2 / 3)
        assert snap["stage_seconds"]["embed"] > 0.0

    def test_snapshot_consistent_under_concurrent_writes(self):
        """hits+misses in one snapshot always move in lockstep (2:1)."""
        import threading

        metrics = RuntimeMetrics()
        stop = threading.Event()
        torn: list[dict] = []

        def writer():
            while not stop.is_set():
                metrics.add(cache_hits=2, cache_misses=1)

        def reader():
            for _ in range(2000):
                snap = metrics.snapshot()
                if snap["cache_hits"] != 2 * snap["cache_misses"]:
                    torn.append(snap)
            stop.set()

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start(); r.start()
        r.join(); stop.set(); w.join()
        assert torn == []

"""Scalar-function coverage in the expression evaluator."""

import numpy as np
import pytest

from repro.minidb.expressions import Frame, evaluate
from repro.sql.parser import parse_select


def item_of(expr_sql: str):
    return parse_select(f"select {expr_sql} from t").items[0].expr


@pytest.fixture()
def frame():
    return Frame(
        columns={
            "t.x": np.array([-2.5, 0.0, 3.14159]),
            "t.s": np.array(["Mixed", "CASE", "lower"]),
        },
        dtypes={"t.x": "float", "t.s": "str"},
        n_rows=3,
    )


class TestFunctions:
    def test_abs(self, frame):
        assert evaluate(item_of("abs(x)"), frame).tolist() == [2.5, 0.0, 3.14159]

    def test_round_digits(self, frame):
        assert evaluate(item_of("round(x, 2)"), frame).tolist() == [-2.5, 0.0, 3.14]

    def test_round_default(self, frame):
        assert evaluate(item_of("round(x)"), frame).tolist() == [-2.0, 0.0, 3.0]

    def test_upper_lower(self, frame):
        assert evaluate(item_of("upper(s)"), frame).tolist() == [
            "MIXED", "CASE", "LOWER",
        ]
        assert evaluate(item_of("lower(s)"), frame).tolist() == [
            "mixed", "case", "lower",
        ]

    def test_cast_int(self, frame):
        out = evaluate(item_of("cast(x as int)"), frame)
        assert out.dtype == np.int64
        assert out.tolist() == [-2, 0, 3]

    def test_cast_varchar(self, frame):
        out = evaluate(item_of("cast(x as varchar)"), frame)
        assert out.dtype.kind == "U"

    def test_coalesce(self):
        f = Frame(
            columns={"t.a": np.array([1.0, np.nan]), "t.b": np.array([9.0, 7.0])},
            dtypes={},
            n_rows=2,
        )
        assert evaluate(item_of("coalesce(a, b)"), f).tolist() == [1.0, 7.0]

    def test_concat_operator(self, frame):
        out = evaluate(item_of("s || '_tag'"), frame)
        assert out.tolist() == ["Mixed_tag", "CASE_tag", "lower_tag"]

    def test_unknown_function_raises(self, frame):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            evaluate(item_of("soundex(s)"), frame)

"""Unit tests for the SnowSim workload generator."""

from collections import Counter, defaultdict

import pytest

from repro.errors import WorkloadError
from repro.sql.parser import parse_select
from repro.workloads import SnowSimConfig, generate_snowsim_workload
from repro.workloads.snowflake_sim import PAPER_TABLE2_ACCOUNTS


@pytest.fixture(scope="module")
def records():
    return generate_snowsim_workload(SnowSimConfig(total_queries=2000, seed=5))


class TestShape:
    def test_roughly_requested_size(self, records):
        assert 1800 <= len(records) <= 2600

    def test_all_accounts_present(self, records):
        accounts = {r.account for r in records}
        assert len(accounts) == len(PAPER_TABLE2_ACCOUNTS)

    def test_account_size_proportions_preserved(self, records):
        counts = Counter(r.account for r in records)
        ordered = [c for _, c in counts.most_common()]
        # biggest account dominates like the paper's 73881 vs 1108
        assert ordered[0] > 5 * ordered[-1]

    def test_timestamps_monotone(self, records):
        times = [r.timestamp for r in records]
        assert times == sorted(times)
        assert times[0] >= 0

    def test_deterministic_given_seed(self):
        a = generate_snowsim_workload(SnowSimConfig(total_queries=300, seed=9))
        b = generate_snowsim_workload(SnowSimConfig(total_queries=300, seed=9))
        assert [r.query for r in a] == [r.query for r in b]

    def test_different_seed_same_schemas(self):
        a = generate_snowsim_workload(SnowSimConfig(total_queries=300, seed=1))
        b = generate_snowsim_workload(SnowSimConfig(total_queries=300, seed=2))

        def tables_of(recs):
            out = set()
            for r in recs:
                for word in r.query.split():
                    if word.startswith("acct"):
                        out.add(word.strip("(),"))
            return out

        # same underlying service: schema vocabularies overlap heavily
        overlap = tables_of(a) & tables_of(b)
        assert len(overlap) > 0.5 * len(tables_of(a))

    def test_empty_profile_rejected(self):
        with pytest.raises(WorkloadError):
            generate_snowsim_workload(SnowSimConfig(account_profile=()))


class TestMechanisms:
    def test_accounts_use_disjoint_table_names(self, records):
        by_account = defaultdict(set)
        for r in records:
            for word in r.query.replace(",", " ").split():
                if word.startswith("acct") and "_" in word:
                    by_account[r.account].add(word)
        accounts = sorted(by_account)
        a, b = by_account[accounts[0]], by_account[accounts[1]]
        assert not (a & b)

    def test_shared_accounts_reuse_texts_across_users(self, records):
        shared = [r for r in records if r.account == "acct00"]
        text_users = defaultdict(set)
        for r in shared:
            text_users[r.query].add(r.user)
        multi = sum(1 for users in text_users.values() if len(users) > 1)
        assert multi / max(1, len(text_users)) > 0.5

    def test_exclusive_account_users_have_distinct_vocab(self, records):
        exclusive = [r for r in records if r.account == "acct03"]
        by_user = defaultdict(set)
        for r in exclusive:
            by_user[r.user].update(r.query.split())
        users = sorted(by_user)
        if len(users) >= 2:
            jaccard = len(by_user[users[0]] & by_user[users[1]]) / len(
                by_user[users[0]] | by_user[users[1]]
            )
            assert jaccard < 0.9  # habits overlap but are not identical

    def test_queries_parse(self, records):
        for record in records[:200]:
            parse_select(record.query)

    def test_labels_populated(self, records):
        for record in records[:50]:
            assert record.user.startswith(record.account)
            assert record.cluster.startswith("cluster_")
            assert record.runtime_seconds > 0
            assert record.memory_mb > 0

    def test_errors_exist_and_correlate_with_syntax(self, records):
        errors = [r for r in records if r.error_code]
        assert errors
        oom = [r for r in errors if r.error_code == "OOM"]
        if oom:  # OOM only comes from join-template queries
            assert all(" JOIN " in r.query for r in oom)

    def test_misroutes_exist_but_rare(self, records):
        by_account = defaultdict(Counter)
        for r in records:
            by_account[r.account][r.cluster] += 1
        misroutes = 0
        for account, clusters in by_account.items():
            majority = clusters.most_common(1)[0][1]
            misroutes += sum(clusters.values()) - majority
        assert 0 < misroutes < 0.05 * len(records)

"""Benchmark result records stay machine-readable in tier-1.

Runs the same checks as ``tools/check_bench_results.py`` (which CI
invokes right after the benchmark steps) so a bench that drifts off
the shared BENCH_*.json schema fails the ordinary test run too, and
exercises the validator itself against known-bad records.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_results", REPO_ROOT / "tools" / "check_bench_results.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_bench_records_validate():
    checker = _load_checker()
    assert checker.check_results() == []


def test_every_known_benchmark_has_a_record():
    # the records are committed artifacts; a bench that stops writing
    # its JSON (or renames it) should be a visible change, not a silent
    # hole in the perf trajectory
    results = REPO_ROOT / "benchmarks" / "results"
    for name in (
        "concurrent",
        "dispatch",
        "forecast",
        "load_aware",
        "many_tenant",
        "server",
    ):
        assert (results / f"BENCH_{name}.json").is_file(), (
            f"BENCH_{name}.json missing from benchmarks/results"
        )


def test_validator_rejects_malformed_records():
    checker = _load_checker()
    valid = {
        "name": "x",
        "config": {"queries": 1},
        "speedup": 1.5,
        "qps": {"serial": 10.0, "staged": 15.0},
    }
    assert checker.validate_record(valid, "ok") == []
    bad_cases = [
        [],  # not an object
        {**valid, "name": ""},  # empty name
        {k: v for k, v in valid.items() if k != "config"},  # missing config
        {**valid, "config": {}},  # empty config
        {**valid, "speedup": 0},  # non-positive speedup
        {**valid, "speedup": float("nan")},  # non-finite speedup
        {**valid, "speedup": True},  # bool is not a measurement
        {**valid, "qps": {}},  # no throughput at all
        {**valid, "qps": {"serial": "fast"}},  # non-numeric throughput
    ]
    for bad in bad_cases:
        assert checker.validate_record(bad, "bad") != [], bad


def test_validator_flags_unreadable_json(tmp_path):
    checker = _load_checker()
    (tmp_path / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
    problems = checker.check_results(tmp_path)
    assert len(problems) == 1
    assert "unreadable JSON" in problems[0]

"""Property-based equivalence of the columnar hot path (hypothesis).

The columnar pipeline (interned fingerprint ids, ``np.unique`` dedup,
template-granularity predict + scatter, deferred ``to_messages()``)
must be byte-identical to the per-message object path for every batch
shape: random SnowSim/TPC-H mixes, duplicate-heavy batches, all-unique
batches, and classifier sets spanning multiple embedders. These
properties pin that contract with generated inputs, reusing the fixed
``identifier``/``simple_select`` strategies from
``test_property_based``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from test_property_based import simple_select

from repro.core import LabeledQuery, QueryClassifier
from repro.core.labeler import ClassifierLabeler
from repro.embedding import BagOfTokensEmbedder
from repro.ml.forest import RandomizedForestClassifier
from repro.runtime import InferencePipeline
from repro.sql.normalizer import (
    _fast_folded_stream,
    fingerprint_token_stream,
    safe_token_stream,
    template_fingerprint,
    token_stream,
)
from repro.workloads import (
    SnowSimConfig,
    generate_snowsim_workload,
    generate_tpch_workload,
)


class QuantizedEmbedder:
    """Rounds vectors to 9 decimals so exact-equivalence assertions are
    immune to BLAS batch-shape rounding jitter (~1e-16): the legacy and
    columnar paths transform different batch shapes."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def transform(self, queries):
        return np.round(self.inner.transform(queries), 9)

    def __getattr__(self, name):
        return getattr(self.inner, name)


_SUBSTRATE = None


def _substrate():
    """Lazily build one fitted multi-embedder classifier set, shared by
    every generated example (hypothesis runs outside fixture scope)."""
    global _SUBSTRATE
    if _SUBSTRATE is None:
        tpch = generate_tpch_workload(instances_per_template=2, seed=7)
        snow = [
            r.query
            for r in generate_snowsim_workload(
                SnowSimConfig(total_queries=200, seed=5)
            )
        ]
        corpus = tpch + snow
        embedder_a = QuantizedEmbedder(
            BagOfTokensEmbedder(dimension=16, min_count=1, seed=3).fit(corpus)
        )
        embedder_b = QuantizedEmbedder(
            BagOfTokensEmbedder(dimension=8, min_count=1, seed=11).fit(corpus)
        )
        train = corpus[:120]
        classifiers = []
        for i, (name, embedder) in enumerate(
            [("route", embedder_a), ("resource", embedder_a), ("tier", embedder_b)]
        ):
            fps = [template_fingerprint(q) for q in train]
            labels = [(int(fp[:8], 16) + i) % 4 for fp in fps]
            labeler = ClassifierLabeler(
                RandomizedForestClassifier(n_trees=3, max_depth=6, seed=i)
            )
            labeler.fit(embedder.transform(train), labels)
            classifiers.append(QueryClassifier(name, embedder, labeler))
        _SUBSTRATE = {"pool": corpus, "classifiers": classifiers}
    return _SUBSTRATE


@st.composite
def query_batch(draw):
    """A labeled-batch's worth of queries: generated SELECTs mixed with
    real TPC-H/SnowSim texts, optionally duplicated (template streams
    repeat) and reshuffled. ``dup == 1`` with distinct draws covers the
    all-unique shape; ``dup > 1`` the duplicate-heavy one."""
    pool = _substrate()["pool"]
    base = draw(
        st.lists(
            st.one_of(simple_select(), st.sampled_from(pool)),
            min_size=1,
            max_size=12,
        )
    )
    dup = draw(st.integers(min_value=1, max_value=3))
    return draw(st.permutations(base * dup))


class TestColumnarEquivalence:
    @given(query_batch())
    @settings(max_examples=40, deadline=None)
    def test_columnar_labels_match_object_path(self, queries):
        classifiers = _substrate()["classifiers"]
        messages = [LabeledQuery.make(q) for q in queries]

        legacy = list(messages)
        for classifier in classifiers:
            legacy = classifier.label_batch(legacy)

        piped = InferencePipeline().run(list(messages), classifiers)

        assert len(piped) == len(legacy) == len(queries)
        for want, got in zip(legacy, piped):
            assert got.query == want.query
            for classifier in classifiers:
                name = classifier.label_name
                assert got.label(name) == want.label(name)

    @given(query_batch())
    @settings(max_examples=20, deadline=None)
    def test_row_views_agree_with_materialization(self, queries):
        """``message_at``/``select`` (the router's spill views) and the
        cached ``to_messages()`` must agree row for row."""
        classifiers = _substrate()["classifiers"]
        columnar = InferencePipeline().run_columnar(
            [LabeledQuery.make(q) for q in queries], classifiers
        )
        per_row = [columnar.message_at(i) for i in range(len(columnar))]
        sliced = list(columnar.select(np.arange(len(columnar))))
        materialized = columnar.to_messages()
        for a, b, c in zip(per_row, sliced, materialized):
            assert a.query == b.query == c.query
            for classifier in classifiers:
                name = classifier.label_name
                assert a.label(name) == b.label(name) == c.label(name)


class TestFingerprintProperties:
    @given(simple_select())
    @settings(max_examples=100)
    def test_fast_scanner_never_diverges_from_lexer(self, sql):
        fast = _fast_folded_stream(sql)
        want = token_stream(sql, fold_literals=True)
        if fast is not None:
            assert fast == want
        assert safe_token_stream(sql, fold_literals=True) == want

    @given(simple_select())
    @settings(max_examples=60)
    def test_memoized_fingerprint_matches_direct_computation(self, sql):
        direct = fingerprint_token_stream(
            safe_token_stream(sql, fold_literals=True)
        )
        assert template_fingerprint(sql) == direct
        assert template_fingerprint(sql) == direct  # memo hit: same answer

"""Unit tests for the LSTM autoencoder embedder."""

import numpy as np
import pytest

from repro.embedding.autoencoder import LSTMAutoencoderEmbedder
from repro.errors import EmbeddingError, NotFittedError


class TestLifecycle:
    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LSTMAutoencoderEmbedder(dimension=8).transform(["select 1"])

    def test_output_shape_and_dimension(self, fitted_lstm, small_corpus):
        out = fitted_lstm.transform(small_corpus[:9])
        assert out.shape == (9, 16)

    def test_training_reduces_loss(self, fitted_lstm):
        history = fitted_lstm.loss_history
        assert len(history) == 4
        assert history[-1] < history[0]

    def test_reconstruction_loss_requires_fit(self):
        with pytest.raises(EmbeddingError):
            LSTMAutoencoderEmbedder(dimension=8).reconstruction_loss(["select 1"])


class TestBehaviour:
    def test_deterministic_given_seed(self, small_corpus):
        a = LSTMAutoencoderEmbedder(
            dimension=8, embed_size=8, epochs=2, seed=5
        ).fit_transform(small_corpus[:30])
        b = LSTMAutoencoderEmbedder(
            dimension=8, embed_size=8, epochs=2, seed=5
        ).fit_transform(small_corpus[:30])
        assert np.allclose(a, b)

    def test_embedding_is_final_hidden_state_bounded(self, fitted_lstm):
        out = fitted_lstm.transform(["SELECT col_1 FROM table_1"])
        # h = o * tanh(c) is bounded by (-1, 1)
        assert np.all(np.abs(out) <= 1.0)

    def test_long_query_truncated_not_crashing(self, fitted_lstm):
        monster = "SELECT " + ", ".join(f"c{i}" for i in range(500)) + " FROM t"
        out = fitted_lstm.transform([monster])
        assert np.isfinite(out).all()

    def test_empty_query_embeds(self, fitted_lstm):
        out = fitted_lstm.transform([""])
        assert out.shape == (1, 16)
        assert np.isfinite(out).all()

    def test_same_query_same_embedding(self, fitted_lstm):
        q = "SELECT col_2 FROM table_3 WHERE col_2 > 5"
        a = fitted_lstm.transform([q, q])
        assert np.allclose(a[0], a[1])

    def test_training_corpus_reconstruction_better_than_random(
        self, fitted_lstm, small_corpus
    ):
        seen = fitted_lstm.reconstruction_loss(small_corpus[:20])
        garbage = [
            "zeta omega kappa " + " ".join(["blorp"] * 10) for _ in range(20)
        ]
        unseen = fitted_lstm.reconstruction_loss(garbage)
        assert seen < unseen

    def test_untied_projection_variant_trains(self, small_corpus):
        emb = LSTMAutoencoderEmbedder(
            dimension=8, embed_size=8, epochs=2, tie_projection=False, seed=0
        )
        out = emb.fit_transform(small_corpus[:30])
        assert np.isfinite(out).all()
        assert emb.loss_history[-1] < emb.loss_history[0]

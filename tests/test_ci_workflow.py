"""The CI workflow stays single-sourced and wired to the bench gates.

A stray copy of the workflow outside ``.github/workflows/`` (e.g. a
``tools/ci.yml`` left behind by a refactor) silently drifts from the
one CI actually runs; this guard keeps ``.github/workflows/`` the only
home. It also pins that the workflow carries the advisory perf gates —
including the resilience goodput floor — and references only benchmark
files that exist, so a renamed bench can't leave CI pointing at
nothing.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKFLOWS = REPO_ROOT / ".github" / "workflows"

_SKIP_DIRS = {".git", ".github", "__pycache__", ".pytest_cache", ".hypothesis"}


def _stray_workflow_files() -> list[Path]:
    """Workflow-looking YAML files outside .github/workflows."""
    strays = []
    for path in REPO_ROOT.rglob("*.yml"):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        # a GitHub Actions workflow declares jobs and an `on:` trigger
        if re.search(r"^jobs:", text, re.M) and re.search(r"^on:", text, re.M):
            strays.append(path)
    return strays


def test_workflows_live_only_under_dot_github():
    strays = _stray_workflow_files()
    assert not strays, (
        "workflow copies outside .github/workflows drift from CI: "
        f"{[str(p.relative_to(REPO_ROOT)) for p in strays]}"
    )


def test_ci_workflow_exists_and_carries_the_perf_gates():
    ci = WORKFLOWS / "ci.yml"
    assert ci.is_file()
    text = ci.read_text(encoding="utf-8")
    for gate in (
        "REPRO_BENCH_MIN_SPEEDUP",
        "REPRO_BENCH_MIN_HOT_PATH_SPEEDUP",
        "REPRO_BENCH_MIN_CONCURRENT_SPEEDUP",
        "REPRO_BENCH_MIN_LOADAWARE_SPEEDUP",
        "REPRO_BENCH_MIN_MANY_TENANT_SPEEDUP",
        "REPRO_BENCH_MIN_DISPATCH_SPEEDUP",
        "REPRO_BENCH_MIN_RESILIENCE_GOODPUT",
        "REPRO_BENCH_MIN_SERVER_QPS",
        "REPRO_BENCH_MIN_FORECAST_P95_GAIN",
    ):
        assert gate in text, f"ci.yml lost the {gate} gate"


def test_ci_workflow_references_only_existing_benchmarks():
    text = (WORKFLOWS / "ci.yml").read_text(encoding="utf-8")
    for ref in re.findall(r"benchmarks/test_bench_\w+\.py", text):
        assert (REPO_ROOT / ref).is_file(), f"ci.yml references missing {ref}"

"""The serving tier's wire protocol, attacked from both sides.

Property tests (hypothesis) pin down the framing layer in isolation —
any JSON frame round-trips through ``encode_frame``/``FrameDecoder``
under arbitrary chunk splits, and a stream salted with malformed
frames yields exactly one structured error event per bad frame with
every good frame still decoded. Session-level fuzz cases then aim the
same malice at a live ``QuercServer`` over a loopback socket: every
hostile byte sequence must come back as a structured ``error`` frame
on a session that still answers pings — never a hang, never a crash,
never a desync. All asyncio tests run under ``run_async``, which
fails the test on leaked event-loop tasks or pool threads.
"""

from __future__ import annotations

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server import EdgeAdmission, QuercServer
from repro.server.protocol import (
    HEADER_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    FrameDecoder,
    decode_payload,
    encode_frame,
    error_frame,
    goodbye_frame,
    hello_frame,
    jsonable,
    ping_frame,
    submit_frame,
)

# -- strategies ---------------------------------------------------------------------

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)

frames = st.fixed_dictionaries(
    {"type": st.sampled_from(["submit", "result", "hello", "custom"])},
    optional={
        "id": st.integers(min_value=0, max_value=2**31),
        "queries": st.lists(st.text(max_size=30), max_size=5),
        "extra": json_values,
    },
)


def chunked(blob: bytes, cuts: list[int]) -> list[bytes]:
    """Split a byte string at the given (sorted, deduped) offsets."""
    points = sorted({min(c, len(blob)) for c in cuts})
    out, prev = [], 0
    for p in points:
        out.append(blob[prev:p])
        prev = p
    out.append(blob[prev:])
    return [c for c in out if c] or [b""]


# -- pure framing properties --------------------------------------------------------


class TestFrameRoundTrip:
    @given(frame=frames)
    @settings(max_examples=150, deadline=None)
    def test_encode_decode_payload_round_trip(self, frame):
        wire = encode_frame(frame)
        (length,) = struct.unpack_from(">I", wire)
        assert length == len(wire) - HEADER_BYTES
        assert wire.endswith(b"\n")
        assert decode_payload(wire[HEADER_BYTES:]) == frame

    @given(
        frame_list=st.lists(frames, min_size=1, max_size=6),
        cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=8),
    )
    @settings(max_examples=150, deadline=None)
    def test_decoder_reassembles_any_chunking(self, frame_list, cuts):
        """However the wire bytes are split, the decoder emits exactly
        the encoded frames, in order, all ok."""
        blob = b"".join(encode_frame(f) for f in frame_list)
        decoder = FrameDecoder()
        events = []
        for chunk in chunked(blob, cuts):
            events.extend(decoder.feed(chunk))
        assert [e.frame for e in events] == frame_list
        assert all(e.ok for e in events)
        assert decoder.at_boundary
        assert decoder.frames_decoded == len(frame_list)
        assert decoder.frames_rejected == 0

    @given(
        parts=st.lists(
            st.one_of(
                frames.map(lambda f: ("ok", f)),
                st.sampled_from(
                    [
                        ("bad", b"not json at all\n"),
                        ("bad", b"[1,2,3]\n"),  # JSON but not an object
                        ("bad", b'"string"\n'),
                        ("bad", b"\xff\xfe garbage \xff\n"),  # invalid UTF-8
                        ("big", None),  # oversized declared length
                    ]
                ),
            ),
            min_size=1,
            max_size=8,
        ),
        cuts=st.lists(st.integers(min_value=0, max_value=8192), max_size=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_decoder_resyncs_after_malformed_frames(self, parts, cuts):
        """Bad frames at frame boundaries cost exactly one error event
        each; every good frame around them still decodes."""
        max_bytes = 512
        blob = bytearray()
        expected = []
        for kind, payload in parts:
            if kind == "ok":
                try:
                    wire = encode_frame(payload, max_bytes)
                except ProtocolError:
                    continue  # drew a frame over the tiny test cap
                blob += wire
                expected.append(("ok", payload))
            elif kind == "bad":
                blob += struct.pack(">I", len(payload)) + payload
                expected.append(("err", ErrorCode.BAD_FRAME.value))
            else:  # oversized: header promises too much, body follows
                body = b"x" * (max_bytes + 7)
                blob += struct.pack(">I", len(body)) + body
                expected.append(("err", ErrorCode.FRAME_TOO_LARGE.value))
        decoder = FrameDecoder(max_bytes)
        events = []
        for chunk in chunked(bytes(blob), cuts):
            events.extend(decoder.feed(chunk))
        assert len(events) == len(expected)
        for event, (kind, want) in zip(events, expected):
            if kind == "ok":
                assert event.ok and event.frame == want
            else:
                assert not event.ok and event.error == want
        assert decoder.at_boundary

    @given(noise=st.binary(max_size=512))
    @settings(max_examples=200, deadline=None)
    def test_decoder_never_raises_and_bounds_its_buffer(self, noise):
        decoder = FrameDecoder(max_frame_bytes=256)
        decoder.feed(noise)  # must not raise, whatever the bytes
        # at most one partial frame is ever buffered
        assert decoder.buffered_bytes <= HEADER_BYTES + 256


class TestEncodeGuards:
    def test_oversized_frame_is_refused_with_code(self):
        with pytest.raises(ProtocolError) as exc_info:
            encode_frame({"type": "submit", "blob": "x" * 100}, 64)
        assert exc_info.value.code == ErrorCode.FRAME_TOO_LARGE.value

    def test_non_dict_frame_is_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame(["not", "a", "frame"])

    def test_jsonable_flattens_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        out = jsonable({"a": np.int64(3), "b": np.float32(0.5), "c": (1, 2)})
        assert out == {"a": 3, "b": 0.5, "c": [1, 2]}
        json.dumps(out)  # round-trippable by the stdlib encoder

    def test_truncated_header_waits_instead_of_erroring(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []
        assert not decoder.at_boundary
        # the rest of a valid frame completes it
        wire = encode_frame(ping_frame(9))
        events = decoder.feed(wire[2:])
        assert [e.frame for e in events] == [ping_frame(9)]


# -- live-session fuzz --------------------------------------------------------------

MAX_TEST_FRAME = 4096


@pytest.fixture()
def tiny_service():
    """A minimal one-app service: labeling yields the timestamp label
    only (no classifiers) and dispatch hits one MiniDB backend."""
    from repro.backends import MiniDBBackend
    from repro.core import QuercService
    from repro.minidb import materialize_log_tables

    queries = [f"SELECT c{i} FROM frames WHERE c{i} > {i}" for i in range(4)]
    service = QuercService()
    service.register_backend(
        MiniDBBackend("DB(proto)", materialize_log_tables(queries, rows_per_table=3))
    )
    service.add_application("proto-app", backend="DB(proto)")
    try:
        yield service
    finally:
        service.close()


async def _start_server(service, **kwargs) -> QuercServer:
    kwargs.setdefault("max_frame_bytes", MAX_TEST_FRAME)
    server = QuercServer(service, **kwargs)
    await server.start()
    return server


async def _open_raw(server):
    host, port = server.address
    return await asyncio.open_connection(host, port)


async def _say(writer, frame: dict) -> None:
    writer.write(encode_frame(frame, MAX_TEST_FRAME))
    await writer.drain()


async def _hear(reader) -> dict:
    """Read exactly one frame off a raw connection."""
    header = await asyncio.wait_for(reader.readexactly(HEADER_BYTES), 10.0)
    (length,) = struct.unpack(">I", header)
    payload = await asyncio.wait_for(reader.readexactly(length), 10.0)
    return decode_payload(payload)


async def _handshake(reader, writer, application: str = "proto-app") -> dict:
    await _say(writer, hello_frame(application=application))
    reply = await _hear(reader)
    assert reply["type"] == "hello_ok"
    assert reply["version"] == PROTOCOL_VERSION
    return reply


class TestLiveSessionFuzz:
    def test_bad_json_frame_answers_error_and_session_survives(
        self, tiny_service, run_async
    ):
        async def scenario():
            server = await _start_server(tiny_service)
            try:
                reader, writer = await _open_raw(server)
                await _handshake(reader, writer)
                for payload in (b"{broken", b"[1,2]\n", b"\xffnot utf8\n"):
                    writer.write(struct.pack(">I", len(payload)) + payload)
                    await writer.drain()
                    reply = await _hear(reader)
                    assert reply["type"] == "error"
                    assert reply["code"] == ErrorCode.BAD_FRAME.value
                    assert "id" not in reply
                # the session is intact: ping still answers
                await _say(writer, ping_frame(77))
                assert (await _hear(reader))["token"] == 77
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
            assert server.metrics.server_protocol_errors == 3

        run_async(scenario())

    def test_oversized_frame_is_skipped_not_fatal(self, tiny_service, run_async):
        async def scenario():
            server = await _start_server(tiny_service)
            try:
                reader, writer = await _open_raw(server)
                await _handshake(reader, writer)
                # header declares far more than the cap; body follows
                body = b"y" * (MAX_TEST_FRAME * 3)
                writer.write(struct.pack(">I", len(body)) + body)
                await writer.drain()
                reply = await _hear(reader)
                assert reply["type"] == "error"
                assert reply["code"] == ErrorCode.FRAME_TOO_LARGE.value
                await _say(writer, ping_frame(5))
                assert (await _hear(reader))["token"] == 5
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run_async(scenario())

    def test_truncated_frame_then_eof_closes_cleanly(
        self, tiny_service, run_async
    ):
        async def scenario():
            server = await _start_server(tiny_service)
            try:
                reader, writer = await _open_raw(server)
                await _handshake(reader, writer)
                # promise 100 bytes, deliver 10, hang up
                writer.write(struct.pack(">I", 100) + b"0123456789")
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # the server notices EOF and retires the session
                for _ in range(200):
                    if server.metrics.server_sessions_closed == 1:
                        break
                    await asyncio.sleep(0.01)
                assert server.metrics.server_sessions_closed == 1
            finally:
                await server.stop()

        run_async(scenario())

    def test_first_frame_must_be_hello(self, tiny_service, run_async):
        async def scenario():
            server = await _start_server(tiny_service)
            try:
                reader, writer = await _open_raw(server)
                await _say(writer, ping_frame(1))
                reply = await _hear(reader)
                assert reply["type"] == "error"
                assert reply["code"] == ErrorCode.BAD_REQUEST.value
                # ... and the server hangs up
                assert await reader.read(64) == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run_async(scenario())

    def test_version_mismatch_is_refused(self, tiny_service, run_async):
        async def scenario():
            server = await _start_server(tiny_service)
            try:
                reader, writer = await _open_raw(server)
                await _say(writer, hello_frame(version=99))
                reply = await _hear(reader)
                assert reply["type"] == "error"
                assert reply["code"] == ErrorCode.UNSUPPORTED_VERSION.value
                assert await reader.read(64) == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run_async(scenario())

    def test_bad_submit_fields_answer_bad_request(self, tiny_service, run_async):
        async def scenario():
            server = await _start_server(tiny_service)
            try:
                reader, writer = await _open_raw(server)
                await _handshake(reader, writer)
                hostile = [
                    {"type": "submit", "queries": ["SELECT 1"]},  # no id
                    {"type": "submit", "id": True, "queries": ["SELECT 1"]},
                    {"type": "submit", "id": 1, "queries": []},
                    {"type": "submit", "id": 2, "queries": ["ok", 3]},
                    {"type": "submit", "id": 3, "queries": ["q"],
                     "timestamps": [1.0, 2.0]},
                    {"type": "wat"},
                ]
                for frame in hostile:
                    await _say(writer, frame)
                    reply = await _hear(reader)
                    assert reply["type"] == "error"
                    assert reply["code"] == ErrorCode.BAD_REQUEST.value
                await _say(
                    writer,
                    {"type": "submit", "id": 4, "queries": ["SELECT 1"],
                     "application": "no-such-app"},
                )
                reply = await _hear(reader)
                assert reply["code"] == ErrorCode.UNKNOWN_APPLICATION.value
                assert reply["id"] == 4
                # a well-formed submit still works on the same session
                await _say(writer, submit_frame(5, ["SELECT c0 FROM frames"]))
                reply = await _hear(reader)
                assert reply["type"] == "result"
                assert reply["id"] == 5
                assert len(reply["labeled"]) == 1
                await _say(writer, goodbye_frame())
                assert (await _hear(reader))["type"] == "goodbye"
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run_async(scenario())

    def test_session_gate_sheds_at_accept_time(self, tiny_service, run_async):
        async def scenario():
            server = await _start_server(
                tiny_service, edge=EdgeAdmission(max_sessions=1)
            )
            try:
                r1, w1 = await _open_raw(server)
                await _handshake(r1, w1)
                # the second connection is refused before any handshake
                r2, w2 = await _open_raw(server)
                reply = await _hear(r2)
                assert reply["type"] == "error"
                assert reply["code"] == ErrorCode.SERVER_BUSY.value
                assert await r2.read(64) == b""
                w2.close()
                await w2.wait_closed()
                # first session is untouched
                await _say(w1, ping_frame(3))
                assert (await _hear(r1))["token"] == 3
                w1.close()
                await w1.wait_closed()
            finally:
                await server.stop()
            assert server.metrics.server_sessions_shed == 1
            assert server.edge.sessions_shed == 1

        run_async(scenario())

    def test_error_frame_helper_round_trips_codes(self):
        frame = error_frame(ErrorCode.SERVER_BUSY, "full", request_id=7)
        wire = encode_frame(frame)
        back = decode_payload(wire[HEADER_BYTES:])
        assert back == {
            "type": "error",
            "code": "SERVER_BUSY",
            "message": "full",
            "id": 7,
        }

"""Unit tests for the executor's joining/grouping helpers."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.minidb.executor import (
    _composite_codes,
    _equi_match,
    _group_codes,
)


class TestEquiMatch:
    def test_basic_pairs(self):
        probe = np.array([1, 2, 3, 2])
        build = np.array([2, 2, 4])
        probe_idx, build_idx = _equi_match(probe, build)
        # probe rows 1 and 3 (value 2) each match build rows 0 and 1
        pairs = sorted(zip(probe_idx.tolist(), build_idx.tolist()))
        assert pairs == [(1, 0), (1, 1), (3, 0), (3, 1)]

    def test_no_matches(self):
        probe_idx, build_idx = _equi_match(np.array([1, 2]), np.array([9]))
        assert len(probe_idx) == 0 and len(build_idx) == 0

    def test_duplicates_both_sides(self):
        probe = np.array([5, 5])
        build = np.array([5, 5, 5])
        probe_idx, _ = _equi_match(probe, build)
        assert len(probe_idx) == 6  # 2 x 3 cross product on the key

    def test_matches_agree_with_bruteforce(self, rng):
        probe = rng.integers(0, 20, 200)
        build = rng.integers(0, 20, 150)
        probe_idx, build_idx = _equi_match(probe, build)
        got = set(zip(probe_idx.tolist(), build_idx.tolist()))
        expected = {
            (i, j)
            for i in range(len(probe))
            for j in range(len(build))
            if probe[i] == build[j]
        }
        assert got == expected


class TestCompositeCodes:
    def test_equal_tuples_equal_codes(self):
        left = [np.array([1, 1, 2]), np.array(["a", "b", "a"])]
        right = [np.array([1, 2]), np.array(["b", "a"])]
        lc, rc = _composite_codes(left, right)
        assert lc[1] == rc[0]  # (1, 'b') == (1, 'b')
        assert lc[2] == rc[1]  # (2, 'a') == (2, 'a')
        assert lc[0] != rc[0]

    def test_mixed_types_ok(self):
        left = [np.array([1.5, 2.5])]
        right = [np.array([2.5])]
        lc, rc = _composite_codes(left, right)
        assert lc[1] == rc[0]

    def test_mismatched_key_lists_raise(self):
        with pytest.raises(ExecutionError):
            _composite_codes([np.array([1])], [])


class TestGroupCodes:
    def test_identical_rows_same_code(self):
        codes = _group_codes([np.array([1, 1, 2]), np.array(["x", "x", "x"])])
        assert codes[0] == codes[1]
        assert codes[0] != codes[2]

    def test_number_of_groups(self, rng):
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 4, 100)
        codes = _group_codes([a, b])
        expected = len({(x, y) for x, y in zip(a.tolist(), b.tolist())})
        assert len(np.unique(codes)) == expected

"""Unit tests for the vocabulary."""

import numpy as np
import pytest

from repro.embedding.vocab import RESERVED, Vocabulary
from repro.errors import EmbeddingError


@pytest.fixture()
def vocab():
    corpus = [["a", "b", "a"], ["a", "c"], ["b", "a"]]
    return Vocabulary(corpus)


class TestConstruction:
    def test_reserved_ids_fixed(self, vocab):
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.bos_id == 2
        assert vocab.eos_id == 3
        for i, tok in enumerate(RESERVED):
            assert vocab.token_of(i) == tok

    def test_frequency_ordering(self, vocab):
        # 'a' (4 occurrences) gets the lowest non-reserved id
        assert vocab.id_of("a") == len(RESERVED)

    def test_deterministic_tie_break(self):
        v1 = Vocabulary([["x", "y"]])
        v2 = Vocabulary([["y", "x"]])
        assert v1.id_of("x") == v2.id_of("x")

    def test_min_count_trims(self):
        vocab = Vocabulary([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_max_size_caps(self):
        corpus = [[f"t{i}" for i in range(100)]]
        vocab = Vocabulary(corpus, max_size=10)
        assert len(vocab) == 10

    def test_empty_corpus_raises(self):
        with pytest.raises(EmbeddingError):
            Vocabulary([])

    def test_bad_min_count_raises(self):
        with pytest.raises(EmbeddingError):
            Vocabulary([["a"]], min_count=0)


class TestEncoding:
    def test_encode_known_and_unknown(self, vocab):
        ids = vocab.encode(["a", "zzz", "b"])
        assert ids[0] == vocab.id_of("a")
        assert ids[1] == vocab.unk_id
        assert ids[2] == vocab.id_of("b")

    def test_roundtrip(self, vocab):
        for token in ("a", "b", "c"):
            assert vocab.token_of(vocab.id_of(token)) == token

    def test_counts(self, vocab):
        assert vocab.count_of(vocab.id_of("a")) == 4


class TestSamplingTables:
    def test_negative_table_is_distribution(self, vocab):
        probs = vocab.negative_sampling_table()
        assert probs.shape == (len(vocab),)
        assert np.isclose(probs.sum(), 1.0)
        assert (probs[: len(RESERVED)] == 0).all()

    def test_subsample_probabilities_bounded(self, vocab):
        keep = vocab.subsample_keep_probabilities(1e-3)
        assert ((keep >= 0) & (keep <= 1)).all()

    def test_frequent_tokens_downsampled_more(self):
        corpus = [["the"] * 50 + ["rare"]] * 20
        vocab = Vocabulary(corpus)
        keep = vocab.subsample_keep_probabilities(1e-3)
        assert keep[vocab.id_of("the")] < keep[vocab.id_of("rare")]

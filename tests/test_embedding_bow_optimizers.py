"""Unit tests for the bag-of-tokens embedder and the optimizers."""

import numpy as np
import pytest

from repro.embedding.bow import BagOfTokensEmbedder, _truncated_svd_components
from repro.embedding.optimizers import SGD, Adagrad, Adam, clip_gradients
from repro.errors import EmbeddingError


class TestBagOfTokens:
    def test_shapes(self, small_corpus):
        emb = BagOfTokensEmbedder(dimension=10).fit(small_corpus)
        out = emb.transform(small_corpus[:4])
        assert out.shape == (4, 10)

    def test_identical_queries_identical_vectors(self, small_corpus):
        emb = BagOfTokensEmbedder(dimension=10).fit(small_corpus)
        out = emb.transform([small_corpus[0], small_corpus[0]])
        assert np.allclose(out[0], out[1])

    def test_token_overlap_drives_similarity(self, small_corpus):
        emb = BagOfTokensEmbedder(dimension=10).fit(small_corpus)
        a, b, c = emb.transform(
            [
                "SELECT col_1 FROM table_1",
                "SELECT col_1 FROM table_1 WHERE col_1 > 5",
                "SELECT * FROM logs_2 LIMIT 3",
            ]
        )

        def cos(x, y):
            return x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-12)

        assert cos(a, b) > cos(a, c)

    def test_small_corpus_pads_rank(self):
        emb = BagOfTokensEmbedder(dimension=50, min_count=1)
        out = emb.fit_transform(["select a from t", "select b from t"])
        assert out.shape == (2, 50)

    def test_svd_components_orthonormal_ish(self, rng):
        matrix = rng.standard_normal((40, 30))
        comps = _truncated_svd_components(matrix, 5, seed=0)
        gram = comps.T @ comps
        assert np.allclose(gram, np.eye(5), atol=1e-6)


class TestOptimizers:
    def _quadratic_descends(self, optimizer, steps=200):
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(steps):
            grads = {"w": 2.0 * params["w"]}
            optimizer.step(params, grads)
        return float(np.abs(params["w"]).max())

    def test_sgd_descends(self):
        assert self._quadratic_descends(SGD(learning_rate=0.1)) < 1e-6

    def test_sgd_momentum_descends(self):
        assert self._quadratic_descends(SGD(learning_rate=0.05, momentum=0.9)) < 1e-3

    def test_adagrad_descends(self):
        assert self._quadratic_descends(Adagrad(learning_rate=0.5)) < 1e-2

    def test_adam_descends(self):
        assert self._quadratic_descends(Adam(learning_rate=0.1), steps=400) < 1e-3

    @pytest.mark.parametrize("cls", [SGD, Adagrad, Adam])
    def test_bad_learning_rate_raises(self, cls):
        with pytest.raises(EmbeddingError):
            cls(learning_rate=-1.0)

    def test_clip_gradients_scales_down(self):
        grads = {"a": np.array([3.0, 4.0])}  # norm 5
        norm = clip_gradients(grads, max_norm=1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(np.linalg.norm(grads["a"]), 1.0)

    def test_clip_gradients_noop_below_threshold(self):
        grads = {"a": np.array([0.3, 0.4])}
        clip_gradients(grads, max_norm=1.0)
        assert np.allclose(grads["a"], [0.3, 0.4])

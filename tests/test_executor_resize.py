"""Live re-provisioning: ``StagedExecutor.resize`` and the resizable
admission gates.

The elastic-pool contract: growing spawns workers that join the ready
loop immediately, shrinking retires exactly the requested number of
workers *at stage boundaries* (never mid-batch), and neither direction
may disturb the scheduler's invariants — per-application FIFO through
both stages, at most one in-flight batch per (lane, stage) — so
results stay byte-identical to the serial path through any resize
schedule. Every accepted future resolves across shrink + close, and
the ``no_thread_leaks`` fixture holds the hygiene line throughout.

The admission side mirrors it: ``TokenBucket.resize`` re-prices time
at the boundary without minting a burst, ``AdmissionController.resize``
swaps bounds under load without disturbing in-flight work.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends.admission import AdmissionController, TokenBucket
from repro.errors import AdmissionError, ServiceError
from repro.runtime.executor import StagedExecutor

WAIT = 10.0


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def doubling_executor(**kwargs) -> StagedExecutor:
    return StagedExecutor(
        lambda app, item: item * 2,
        lambda app, staged: staged + 1,
        **kwargs,
    )


def wait_for_workers(ex: StagedExecutor, n: int, timeout: float = WAIT) -> int:
    """Wait until retire tokens drain and exactly ``n`` workers remain."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = ex.stats()["pool"]["workers_alive"]
        if alive == n:
            return alive
    return ex.stats()["pool"]["workers_alive"]


class TestExecutorResize:
    @pytest.fixture(autouse=True)
    def _hygiene(self, no_thread_leaks):
        yield

    def test_grow_mid_stream_keeps_results_identical(self):
        with doubling_executor(label_workers=1, dispatch_workers=1) as ex:
            futures = []
            for i in range(40):
                futures.append(ex.submit(f"app{i % 4}", i))
                if i == 10:
                    pool = ex.resize(label_workers=4, dispatch_workers=4)
                    assert pool["label_workers"] == 4
                    assert pool["dispatch_workers"] == 4
                    assert pool["workers_alive"] == 8
            assert [f.result(WAIT) for f in futures] == [
                i * 2 + 1 for i in range(40)
            ]
            assert ex.stats()["pool"]["resizes"] == 1

    def test_shrink_mid_stream_retires_at_stage_boundaries(self):
        with doubling_executor(label_workers=4, dispatch_workers=4) as ex:
            futures = []
            for i in range(60):
                futures.append(ex.submit(f"app{i % 6}", i))
                if i == 20:
                    ex.resize(label_workers=1, dispatch_workers=1)
            assert [f.result(WAIT) for f in futures] == [
                i * 2 + 1 for i in range(60)
            ]
            # the retire tokens drain once in-flight batches finish
            assert wait_for_workers(ex, 2) == 2
            pool = ex.stats()["pool"]
            assert pool["workers_retired"] == 6
            assert pool["label_workers"] == 1
            assert pool["dispatch_workers"] == 1

    def test_resize_churn_under_load_resolves_every_future(self):
        """A hostile resize schedule mid-load: every future resolves,
        in submission order per lane, and the pool settles."""
        schedule = [(3, 5), (1, 1), (5, 2), (2, 6), (1, 1)]
        with doubling_executor(label_workers=2, dispatch_workers=2) as ex:
            futures = []
            for i in range(100):
                futures.append(ex.submit(f"t{i % 8}", i))
                if i % 20 == 10:
                    lw, dw = schedule[(i // 20) % len(schedule)]
                    ex.resize(label_workers=lw, dispatch_workers=dw)
            assert [f.result(WAIT) for f in futures] == [
                i * 2 + 1 for i in range(100)
            ]
            assert wait_for_workers(ex, 2) == 2  # last resize: 1 + 1

    def test_shrink_then_close_strands_nothing(self):
        """close() must drain accepted work even while retire tokens
        are still queued behind it."""
        release = threading.Event()

        def slow_label(app, item):
            assert release.wait(WAIT)
            return item

        ex = StagedExecutor(
            slow_label, lambda app, staged: staged,
            label_workers=4, dispatch_workers=2,
        )
        futures = [ex.submit("X", i) for i in range(4)]
        ex.resize(label_workers=1, dispatch_workers=1)  # tokens parked
        release.set()
        ex.close()
        assert [f.result(WAIT) for f in futures] == list(range(4))
        assert ex.stats()["pool"]["workers_alive"] == 0

    def test_grow_actually_adds_concurrency(self):
        """After growing, the new workers genuinely run batches in
        parallel: 4 gated batches on 4 lanes finish together."""
        gate = threading.Barrier(4, timeout=WAIT)

        def rendezvous(app, item):
            gate.wait()  # only passes when 4 workers are inside
            return item

        with StagedExecutor(
            rendezvous, lambda app, staged: staged,
            label_workers=1, dispatch_workers=1,
        ) as ex:
            ex.resize(label_workers=4)
            futures = [ex.submit(f"app{i}", i) for i in range(4)]
            assert [f.result(WAIT) for f in futures] == list(range(4))
            assert ex.stats()["pool"]["max_label_active"] == 4

    def test_resize_noop_and_validation(self):
        with doubling_executor(label_workers=2, dispatch_workers=2) as ex:
            pool = ex.resize(label_workers=2, dispatch_workers=2)
            assert pool["resizes"] == 0  # nothing changed
            with pytest.raises(ServiceError, match=">= 1"):
                ex.resize(label_workers=0)
            with pytest.raises(ServiceError, match=">= 1"):
                ex.resize(dispatch_workers=-1)
        with pytest.raises(ServiceError, match="closed"):
            ex.resize(label_workers=3)

    def test_worker_names_stay_unique_across_generations(self):
        """Shrink-then-grow must not reuse thread names — the spawn
        index is per-stage monotonic, so dumps stay unambiguous."""
        with doubling_executor(label_workers=2, dispatch_workers=1) as ex:
            ex.resize(label_workers=1)
            ex.resize(label_workers=3)
            names = [t.name for t in ex._label_threads]
            assert len(names) == len(set(names)) == 4  # 2 + 2 spawned

    def test_pool_window_resets_to_current_occupancy(self):
        release = threading.Event()
        entered = threading.Event()

        def gated(app, item):
            entered.set()
            assert release.wait(WAIT)
            return item

        with StagedExecutor(
            gated, lambda app, staged: staged,
            label_workers=2, dispatch_workers=1,
        ) as ex:
            future = ex.submit("X", 1)
            assert entered.wait(WAIT)
            # one worker is mid-batch: a reset re-seeds at 1, not 0
            window = ex.pool_window(reset=True)
            assert window["window_max_label_active"] == 1
            assert ex.pool_window()["window_max_label_active"] == 1
            release.set()
            assert future.result(WAIT) == 1
        # after the pool drains a reset re-seeds at zero
        assert ex.pool_window(reset=True)["window_max_label_active"] >= 0

    def test_stats_pool_carries_window_and_resize_counters(self):
        with doubling_executor(label_workers=1, dispatch_workers=1) as ex:
            assert ex.submit("X", 1).result(WAIT) == 3
            pool = ex.stats()["pool"]
            for key in (
                "workers_alive",
                "resizes",
                "workers_retired",
                "window_max_label_active",
                "window_max_dispatch_active",
                "window_seconds",
            ):
                assert key in pool
            assert pool["window_max_label_active"] == 1
            window = ex.pool_window(reset=True)
            assert window["window_max_label_active"] == 1
            assert ex.pool_window()["window_max_label_active"] == 0


class TestTokenBucketResize:
    def test_grow_burst_never_mints_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=10.0, clock=clock)
        assert bucket.take(10) == 10  # drain the initial burst
        bucket.resize(burst=100.0)
        assert bucket.available == 0  # headroom grew; balance did not
        clock.advance(1.0)
        assert bucket.available == 10  # fills at the (unchanged) rate

    def test_shrink_burst_forfeits_excess(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        assert bucket.available == 100
        bucket.resize(burst=5.0)
        assert bucket.available == 5

    def test_rate_change_prices_elapsed_time_at_old_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=100.0, clock=clock)
        bucket.take(100)  # empty
        clock.advance(5.0)  # 10 tokens owed at the old rate
        bucket.resize(rate=50.0)
        assert bucket.available == 10  # not 250: old time, old price
        clock.advance(1.0)
        assert bucket.available == 60  # new time, new price

    def test_resize_validation(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=FakeClock())
        with pytest.raises(AdmissionError):
            bucket.resize(rate=0.0)
        with pytest.raises(AdmissionError):
            bucket.resize(burst=-1.0)


class TestAdmissionControllerResize:
    def test_shrink_below_in_flight_pauses_without_disturbing_work(self):
        gate = AdmissionController(max_in_flight=8)
        assert gate.admit(6) == 6
        snap = gate.resize(max_in_flight=2)
        assert snap["max_in_flight"] == 2
        assert snap["in_flight"] == 6  # admitted work is never evicted
        assert gate.admit(1) == 0  # paused until releases drain
        gate.release(5)
        assert gate.admit(1) == 1

    def test_grow_in_flight_unblocks_admission(self):
        gate = AdmissionController(max_in_flight=1)
        assert gate.admit(1) == 1
        assert gate.admit(1) == 0
        gate.resize(max_in_flight=4)
        assert gate.admit(3) == 3

    def test_adding_rate_to_unlimited_gate_starts_empty(self):
        clock = FakeClock()
        gate = AdmissionController(clock=clock)
        assert gate.admit(100) == 100  # unlimited
        gate.resize(rate=10.0, burst=20.0)
        assert gate.admit(5) == 0  # no free initial burst
        clock.advance(1.0)
        assert gate.admit(20) == 10  # refilled at the new rate

    def test_removing_rate_and_bound_returns_to_unlimited(self):
        clock = FakeClock()
        gate = AdmissionController(max_in_flight=2, rate=1.0, clock=clock)
        gate.resize(max_in_flight=None, rate=None)
        assert gate.admit(500) == 500
        snap = gate.snapshot()
        assert snap["max_in_flight"] is None
        assert snap["rate"] is None and snap["burst"] is None

    def test_rate_resize_keeps_bucket_discipline(self):
        clock = FakeClock()
        gate = AdmissionController(rate=10.0, burst=10.0, clock=clock)
        assert gate.admit(10) == 10  # initial burst (constructor-full)
        gate.resize(rate=100.0, burst=200.0)
        assert gate.admit(50) == 0  # resize minted nothing
        clock.advance(0.5)
        assert gate.admit(100) == 50

    def test_resize_validation_and_counter(self):
        gate = AdmissionController(max_in_flight=4)
        with pytest.raises(AdmissionError):
            gate.resize(max_in_flight=0)
        with pytest.raises(AdmissionError):
            gate.resize(burst=5.0)  # burst without a rate
        assert gate.snapshot()["resizes"] == 0
        gate.resize(max_in_flight=8)
        gate.resize(rate=1.0)
        assert gate.snapshot()["resizes"] == 2

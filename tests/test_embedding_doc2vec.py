"""Unit tests for the Doc2Vec embedder."""

import numpy as np
import pytest

from repro.embedding.doc2vec import Doc2VecEmbedder
from repro.errors import EmbeddingError, NotFittedError


class TestLifecycle:
    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            Doc2VecEmbedder(dimension=8).transform(["select 1"])

    def test_fit_empty_corpus_raises(self):
        with pytest.raises(EmbeddingError):
            Doc2VecEmbedder(dimension=8).fit([])

    def test_bad_variant_raises(self):
        with pytest.raises(EmbeddingError):
            Doc2VecEmbedder(variant="cbow")

    def test_bad_dimension_raises(self):
        with pytest.raises(EmbeddingError):
            Doc2VecEmbedder(dimension=0)

    def test_output_shape(self, small_corpus):
        emb = Doc2VecEmbedder(dimension=12, epochs=2, seed=0).fit(small_corpus)
        out = emb.transform(small_corpus[:7])
        assert out.shape == (7, 12)

    def test_empty_transform(self, fitted_doc2vec):
        assert fitted_doc2vec.transform([]).shape == (0, 16)


class TestSemantics:
    def test_deterministic_given_seed(self, small_corpus):
        a = Doc2VecEmbedder(dimension=8, epochs=2, seed=3).fit_transform(small_corpus)
        b = Doc2VecEmbedder(dimension=8, epochs=2, seed=3).fit_transform(small_corpus)
        assert np.allclose(a, b)

    def test_transform_deterministic(self, fitted_doc2vec, small_corpus):
        a = fitted_doc2vec.transform(small_corpus[:5])
        b = fitted_doc2vec.transform(small_corpus[:5])
        assert np.allclose(a, b)

    def test_similar_queries_closer_than_dissimilar(self, fitted_doc2vec):
        # template-mates vs cross-template (training-style queries)
        q_group = "SELECT col_1, SUM(metric_1) FROM table_1 WHERE col_1 > 3 GROUP BY col_1"
        q_group2 = "SELECT col_2, SUM(metric_2) FROM table_2 WHERE col_2 > 9 GROUP BY col_2"
        q_logs = "SELECT * FROM logs_1 WHERE ts >= '2020-01-02' LIMIT 5"
        va, vb, vc = fitted_doc2vec.transform([q_group, q_group2, q_logs])

        def cos(x, y):
            return x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-12)

        assert cos(va, vb) > cos(va, vc)

    def test_unseen_tokens_survive(self, fitted_doc2vec):
        vec = fitted_doc2vec.transform(["SELECT zzz FROM unseen_table_xyz"])
        assert np.isfinite(vec).all()

    def test_garbage_text_survives(self, fitted_doc2vec):
        vec = fitted_doc2vec.transform(["not sql at all \x7f ))) '"])
        assert vec.shape == (1, 16)

    def test_dm_variant_trains(self, small_corpus):
        emb = Doc2VecEmbedder(
            dimension=8, variant="dm", window=3, epochs=2, seed=0
        )
        out = emb.fit_transform(small_corpus)
        assert out.shape == (len(small_corpus), 8)
        assert np.isfinite(out).all()

    def test_doc_vectors_stored_for_training_corpus(self, small_corpus):
        emb = Doc2VecEmbedder(dimension=8, epochs=2, seed=0).fit(small_corpus)
        assert emb.doc_vectors is not None
        assert emb.doc_vectors.shape == (len(small_corpus), 8)

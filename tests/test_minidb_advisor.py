"""Unit tests for the anytime index advisor."""

import pytest

from repro.errors import AdvisorError
from repro.minidb import IndexAdvisor
from repro.workloads import generate_tpch_workload


@pytest.fixture(scope="module")
def advisor(tpch_db):
    return IndexAdvisor(tpch_db)


@pytest.fixture(scope="module")
def workload():
    return generate_tpch_workload(instances_per_template=2, seed=7)


class TestBudgetBehaviour:
    def test_below_startup_returns_nothing(self, advisor, workload):
        report = advisor.recommend(workload, advisor.startup_seconds * 0.5)
        assert len(report.config) == 0
        assert report.whatif_calls == 0

    def test_budget_is_honored(self, advisor, workload):
        budget = advisor.startup_seconds + 5.0
        report = advisor.recommend(workload, budget)
        assert report.simulated_seconds <= budget + 1e-9

    def test_more_budget_never_worse_estimated(self, advisor, workload):
        small = advisor.recommend(workload, advisor.startup_seconds + 10)
        large = advisor.recommend(workload, advisor.startup_seconds + 600)
        assert large.est_cost_after <= small.est_cost_after + 1e-6

    def test_larger_budget_more_calls(self, advisor, workload):
        small = advisor.recommend(workload, advisor.startup_seconds + 5)
        large = advisor.recommend(workload, advisor.startup_seconds + 100)
        assert large.whatif_calls >= small.whatif_calls

    def test_billing_multiplier_slows_progress(self, advisor, workload):
        budget = advisor.startup_seconds + 30
        plain = advisor.recommend(workload, budget)
        inflated = advisor.recommend(workload, budget, billing_multiplier=20.0)
        # fewer real candidate evaluations fit in the same budget
        assert inflated.whatif_calls / 20.0 <= plain.whatif_calls
        assert inflated.rounds_completed <= plain.rounds_completed

    def test_picks_recorded_with_timestamps(self, advisor, workload):
        report = advisor.recommend(workload, advisor.startup_seconds + 600)
        assert report.picks
        times = [p.simulated_seconds for p in report.picks]
        assert times == sorted(times)
        assert all(p.est_benefit > 0 for p in report.picks)


class TestRecommendations:
    def test_estimated_improvement_positive(self, advisor, workload):
        report = advisor.recommend(workload, advisor.startup_seconds + 600)
        assert report.est_cost_after < report.est_cost_before

    def test_summary_workload_converges_fast(self, advisor, workload):
        summary = workload[::6]
        report = advisor.recommend(summary, advisor.startup_seconds + 30)
        # a ~8-query workload completes greedy in a handful of seconds
        assert report.rounds_completed >= 1
        assert len(report.config) >= 1

    def test_storage_budget_respected(self, tpch_db, workload):
        tight = IndexAdvisor(tpch_db, storage_fraction=0.02)
        report = tight.recommend(workload, tight.startup_seconds + 600)
        assert report.config.total_size_bytes(
            tpch_db.catalog
        ) <= 0.02 * tpch_db.catalog.total_data_bytes() + 1e-6

    def test_unparseable_queries_skipped(self, advisor):
        report = advisor.recommend(
            ["DROP TABLE x", "garbage ("], advisor.startup_seconds + 60
        )
        assert len(report.config) == 0


class TestValidation:
    def test_empty_workload_raises(self, advisor):
        with pytest.raises(AdvisorError):
            advisor.recommend([], 100.0)

    def test_bad_budget_raises(self, advisor, workload):
        with pytest.raises(AdvisorError):
            advisor.recommend(workload, 0.0)

    def test_bad_multiplier_raises(self, advisor, workload):
        with pytest.raises(AdvisorError):
            advisor.recommend(workload, 100.0, billing_multiplier=-1.0)

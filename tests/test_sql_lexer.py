"""Unit tests for the dialect-tolerant SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select from where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        assert values("MyTable")[0] == "MyTable"
        assert kinds("MyTable") == [TokenType.IDENTIFIER]

    def test_eof_token_is_last(self):
        tokens = tokenize("select 1")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_positions_recorded(self):
        tokens = tokenize("a = 1")
        assert tokens[0].position == 0
        assert tokens[1].position == 2
        assert tokens[2].position == 4


class TestLiterals:
    def test_string_literal(self):
        tokens = tokenize("select 'hello world'")
        assert tokens[1].type is TokenType.STRING
        assert tokens[1].value == "'hello world'"

    def test_string_with_doubled_quote_escape(self):
        tokens = tokenize("select 'it''s'")
        assert tokens[1].value == "'it''s'"
        assert tokens[2].type is TokenType.EOF

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("select 'oops")

    def test_integer_float_exponent_hex(self):
        assert values("1 2.5 .5 1e-4 0x1F") == ["1", "2.5", ".5", "1e-4", "0x1F"]
        assert all(k is TokenType.NUMBER for k in kinds("1 2.5 .5 1e-4 0x1F"))

    def test_number_followed_by_dot_access_not_confused(self):
        # 1.2.3 would be weird SQL; ensure 'a.1' style doesn't crash
        tokens = tokenize("t1.col2")
        assert tokens[0].value == "t1"
        assert tokens[1].value == "."
        assert tokens[2].value == "col2"


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        tokens = tokenize('select "My Col" from t')
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "My Col"

    def test_backtick_quoted(self):
        tokens = tokenize("select `weird name` from t")
        assert tokens[1].value == "weird name"

    def test_bracket_quoted(self):
        tokens = tokenize("select [Order Details] from t")
        assert tokens[1].value == "Order Details"

    def test_unterminated_bracket_raises(self):
        with pytest.raises(LexerError):
            tokenize("select [oops from t")


class TestComments:
    def test_line_comment_skipped(self):
        assert values("select 1 -- comment\n , 2") == ["SELECT", "1", ",", "2"]

    def test_hash_comment_skipped(self):
        assert values("select 1 # note\n") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert values("select /* hi */ 1") == ["SELECT", "1"]

    def test_block_comment_kept_when_requested(self):
        tokens = tokenize("select /* hi */ 1", keep_comments=True)
        assert any(t.type is TokenType.COMMENT for t in tokens)

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("select /* oops")


class TestParameters:
    @pytest.mark.parametrize(
        "marker", ["?", "$1", ":name", "%s"], ids=["qmark", "dollar", "colon", "pct"]
    )
    def test_parameter_markers(self, marker):
        tokens = tokenize(f"select * from t where id = {marker}")
        assert any(t.type is TokenType.PARAMETER for t in tokens)

    def test_colon_without_name_is_operator(self):
        # a bare '::' is the cast operator, not a parameter
        tokens = tokenize("select a::int")
        assert any(t.value == "::" for t in tokens)


class TestOperators:
    def test_multichar_operators(self):
        for op in ("<>", "!=", ">=", "<=", "||", "::"):
            assert op in values(f"a {op} b")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("select \x01")
        assert excinfo.value.position >= 0

"""The backend routing layer: admission control, dispatch, spill.

Covers the pieces bottom-up — token bucket and admission gate, the
MiniDB backend adapter, registry + router policies — and ends with the
Figure-1 end-to-end: a service with two registered backends routing a
SnowSim stream by *predicted* cluster, with an admission limit on one
backend observable in ``stats()`` and admitted queries actually
executing on the bound databases.
"""

from __future__ import annotations

import threading

import pytest

from repro.backends import (
    AdmissionController,
    BackendRegistry,
    BatchRouter,
    MiniDBBackend,
    NullBackend,
    SpillPolicy,
    TokenBucket,
)
from repro.core.labeled_query import LabeledQuery
from repro.errors import AdmissionError, BackendError
from repro.minidb import materialize_log_tables
from repro.runtime.metrics import RuntimeMetrics
from repro.workloads import (
    QueryStream,
    SnowSimConfig,
    generate_snowsim_workload,
    interleave_streams,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_batch(n: int, cluster: str = "", query: str = "select 1") -> list[LabeledQuery]:
    labels = {"cluster": cluster} if cluster else {}
    return [LabeledQuery.make(f"{query} -- {i}", **labels) for i in range(n)]


class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4, clock=clock)
        assert bucket.take(10) == 4
        clock.advance(100.0)
        assert bucket.take(10) == 4  # refill capped at burst

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=10, clock=clock)
        assert bucket.take(10) == 10
        clock.advance(1.5)  # 3 tokens back
        assert bucket.take(10) == 3

    def test_partial_grant_never_negative(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.take(1) == 1
        assert bucket.take(5) == 1
        assert bucket.take(5) == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(AdmissionError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(AdmissionError):
            TokenBucket(rate=1, burst=0)


class TestAdmissionController:
    def test_unconfigured_admits_everything(self):
        gate = AdmissionController()
        assert gate.admit(10_000) == 10_000
        gate.release(10_000)
        assert gate.in_flight == 0

    def test_in_flight_bound(self):
        gate = AdmissionController(max_in_flight=3)
        assert gate.admit(5) == 3
        assert gate.admit(1) == 0  # saturated
        gate.release(2)
        assert gate.admit(5) == 2

    def test_rate_limit_composes_with_slots(self):
        clock = FakeClock()
        gate = AdmissionController(max_in_flight=10, rate=1.0, burst=4, clock=clock)
        assert gate.admit(8) == 4  # token-bound, not slot-bound
        gate.release(4)
        assert gate.admit(8) == 0  # bucket empty
        clock.advance(2.0)
        assert gate.admit(8) == 2

    def test_release_more_than_in_flight_rejected(self):
        gate = AdmissionController(max_in_flight=2)
        gate.admit(2)
        with pytest.raises(AdmissionError):
            gate.release(3)

    def test_invalid_config_rejected(self):
        with pytest.raises(AdmissionError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(AdmissionError):
            AdmissionController(burst=4)  # burst without rate

    def test_snapshot_shape(self):
        gate = AdmissionController(max_in_flight=2, rate=5.0)
        gate.admit(1)
        snap = gate.snapshot()
        assert snap["in_flight"] == 1
        assert snap["max_in_flight"] == 2
        assert snap["rate"] == 5.0


class TestAllOrNothingAdmission:
    """``admit_all`` / ``take_exact`` — the serving edge's gate mode.

    A submit frame is one request: the edge takes it whole or not at
    all, because a partially-admitted frame has no meaningful reply.
    """

    def test_take_exact_is_whole_or_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4, clock=clock)
        assert bucket.take_exact(5) is False  # over burst: nothing taken
        assert bucket.take_exact(4) is True  # the refusal cost no tokens
        assert bucket.take_exact(1) is False
        clock.advance(2.0)
        assert bucket.take_exact(2) is True

    def test_admit_all_slots_whole_or_nothing(self):
        gate = AdmissionController(max_in_flight=4)
        assert gate.admit_all(5) is False
        assert gate.in_flight == 0  # the refusal held nothing
        assert gate.admit_all(4) is True
        assert gate.admit_all(1) is False
        gate.release(2)
        assert gate.admit_all(2) is True

    def test_admit_all_composes_slots_and_rate(self):
        clock = FakeClock()
        gate = AdmissionController(
            max_in_flight=10, rate=1.0, burst=3, clock=clock
        )
        assert gate.admit_all(3) is True
        assert gate.admit_all(1) is False  # bucket empty, slots free
        gate.release(3)
        clock.advance(3.0)
        assert gate.admit_all(3) is True

    def test_admit_all_zero_and_unconfigured(self):
        assert AdmissionController().admit_all(100) is True
        gate = AdmissionController(max_in_flight=1)
        assert gate.admit_all(0) is True
        assert gate.in_flight == 0

    def test_admit_all_counts_offered_and_granted(self):
        gate = AdmissionController(max_in_flight=2)
        gate.admit_all(2)
        gate.admit_all(2)
        snap = gate.snapshot()
        assert snap["offered"] == 4
        assert snap["granted"] == 2


@pytest.fixture(scope="module")
def snow_records():
    return generate_snowsim_workload(SnowSimConfig(total_queries=600, seed=11))


@pytest.fixture(scope="module")
def snow_db(snow_records):
    return materialize_log_tables(
        [r.query for r in snow_records], rows_per_table=48, seed=3
    )


class TestMiniDBBackend:
    def test_executes_batch_with_results(self, snow_db, snow_records):
        backend = MiniDBBackend("DB(A)", snow_db)
        queries = [r.query for r in snow_records[:20]]
        result = backend.execute(queries)
        assert len(result) == 20
        assert result.ok_count >= 18  # materialized schema satisfies the log
        for outcome in result.outcomes:
            if outcome.ok:
                assert outcome.result is not None  # engine results returned
                assert outcome.error == ""

    def test_bad_query_captured_not_raised(self, snow_db):
        backend = MiniDBBackend("DB(A)", snow_db)
        result = backend.execute(["select * from no_such_table", "not even sql"])
        assert result.ok_count == 0
        assert result.failed_count == 2
        assert all(o.error for o in result.outcomes)

    def test_strict_mode_raises(self, snow_db):
        backend = MiniDBBackend("DB(A)", snow_db, strict=True)
        with pytest.raises(BackendError):
            backend.execute(["select * from no_such_table"])

    def test_strict_mode_batch_results(self, snow_db, snow_records):
        backend = MiniDBBackend("DB(A)", snow_db, strict=True)
        # pick queries the lenient backend is known to execute cleanly
        good = [
            o.query
            for o in MiniDBBackend("probe", snow_db)
            .execute([r.query for r in snow_records[:30]])
            .outcomes
            if o.ok
        ][:10]
        result = backend.execute(good)
        assert result.ok_count == len(good)
        assert all(o.result is not None for o in result.outcomes)

    def test_strict_overflow_still_queued_when_execute_raises(self, snow_db):
        registry = BackendRegistry()
        router = BatchRouter(registry, metrics=RuntimeMetrics())
        backend = MiniDBBackend("DB(A)", snow_db, strict=True)
        registry.register(
            backend, max_in_flight=2, spill=SpillPolicy.QUEUE, queue_capacity=10
        )
        bad = [
            LabeledQuery.make("select * from no_such_table", cluster="DB(A)")
            for _ in range(5)
        ]
        with pytest.raises(BackendError):
            router.dispatch("X", bad)
        binding = registry.get("DB(A)")
        # the overflow was dispositioned before the backend raised
        assert binding.pending_depth == 3
        counters = binding.counters.snapshot()
        assert counters["queued"] == 3
        assert counters["admitted"] == 2
        # the admitted slots were released despite the raise
        assert binding.admission.in_flight == 0

    def test_snapshot_counts(self, snow_db, snow_records):
        backend = MiniDBBackend("DB(A)", snow_db)
        backend.execute([snow_records[0].query, "select * from no_such_table"])
        snap = backend.snapshot()
        assert snap["executed"] + snap["failed"] == 2
        assert snap["tables"]


class TestBackendRegistry:
    def test_register_and_lookup(self):
        registry = BackendRegistry()
        binding = registry.register(NullBackend("DB(A)"))
        assert registry.get("DB(A)") is binding
        assert "DB(A)" in registry
        assert registry.names() == ["DB(A)"]

    def test_duplicate_rejected(self):
        registry = BackendRegistry()
        registry.register(NullBackend("DB(A)"))
        with pytest.raises(BackendError):
            registry.register(NullBackend("DB(A)"))

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            BackendRegistry().get("DB(missing)")

    def test_fallback_policy_requires_name(self):
        with pytest.raises(BackendError):
            BackendRegistry().register(
                NullBackend("DB(A)"), spill=SpillPolicy.FALLBACK
            )


def make_router(**bindings_kwargs):
    registry = BackendRegistry()
    router = BatchRouter(registry, route_label="cluster", metrics=RuntimeMetrics())
    return registry, router


class TestBatchRouterResolution:
    def test_route_table_wins(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        router.set_route("east", "DB(A)")
        assert router.resolve(LabeledQuery.make("q", cluster="east")) == "DB(A)"

    def test_label_naming_a_backend_routes_itself(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        assert router.resolve(LabeledQuery.make("q", cluster="DB(A)")) == "DB(A)"

    def test_default_backend_catches_unmapped(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        assert router.resolve(LabeledQuery.make("q"), default="DB(A)") == "DB(A)"

    def test_no_route_raises(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        with pytest.raises(BackendError):
            router.resolve(LabeledQuery.make("q", cluster="nowhere"))

    def test_route_to_unknown_backend_rejected(self):
        _, router = make_router()
        with pytest.raises(BackendError):
            router.set_route("east", "DB(missing)")


class TestBatchRouterDispatch:
    def test_empty_batch_is_a_noop(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        report = router.dispatch("X", [])
        assert report.decisions == ()

    def test_splits_batch_by_predicted_label(self):
        registry, router = make_router()
        a, b = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(a)
        registry.register(b)
        router.set_route("east", "DB(A)")
        router.set_route("west", "DB(B)")
        batch = make_batch(6, "east") + make_batch(4, "west")
        report = router.dispatch("X", batch)
        assert report.offered == 10
        assert report.admitted == 10
        assert a.accepted == 6
        assert b.accepted == 4

    def test_reject_policy_counts_overflow(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"), max_in_flight=3)
        report = router.dispatch("X", make_batch(8, "DB(A)"))
        assert report.admitted == 3
        assert report.rejected == 5
        counters = registry.get("DB(A)").counters.snapshot()
        assert counters["dispatched"] == 8
        assert counters["admitted"] == 3
        assert counters["rejected"] == 5
        # slots were released after the synchronous execute
        assert registry.get("DB(A)").admission.in_flight == 0

    def test_queue_policy_parks_and_drains_fifo(self):
        registry, router = make_router()
        backend = NullBackend("DB(A)")
        registry.register(
            backend, max_in_flight=2, spill=SpillPolicy.QUEUE, queue_capacity=10
        )
        first = router.dispatch("X", make_batch(5, "DB(A)", query="first"))
        assert first.admitted == 2
        assert first.queued == 3
        assert registry.get("DB(A)").pending_depth == 3
        # next dispatch retries the parked tail before new arrivals
        second = router.dispatch("X", make_batch(2, "DB(A)", query="second"))
        from_queue = [d for d in second.decisions if d.from_queue]
        assert from_queue and from_queue[0].admitted == 2
        assert all("first" in q for q in backend.recent()[2:4])

    def test_queue_capacity_overflow_rejected(self):
        registry, router = make_router()
        registry.register(
            NullBackend("DB(A)"),
            max_in_flight=1,
            spill=SpillPolicy.QUEUE,
            queue_capacity=2,
        )
        report = router.dispatch("X", make_batch(6, "DB(A)"))
        assert report.admitted == 1
        assert report.queued == 2
        assert report.rejected == 3

    def test_explicit_drain(self):
        registry, router = make_router()
        backend = NullBackend("DB(A)")
        registry.register(
            backend, max_in_flight=2, spill=SpillPolicy.QUEUE, queue_capacity=10
        )
        router.dispatch("X", make_batch(6, "DB(A)"))
        assert registry.get("DB(A)").pending_depth == 4
        drained = router.drain("DB(A)")
        # drain decisions are queue retries, so read them directly
        # (the batch-level aggregate properties exclude retries)
        assert sum(d.admitted for d in drained.decisions) == 2
        assert all(d.from_queue for d in drained.decisions)
        assert registry.get("DB(A)").pending_depth == 2

    def test_fallback_spills_one_hop(self):
        registry, router = make_router()
        primary, sibling = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(
            primary, max_in_flight=2, spill=SpillPolicy.FALLBACK, fallback="DB(B)"
        )
        registry.register(sibling, max_in_flight=3)
        report = router.dispatch("X", make_batch(9, "DB(A)"))
        assert primary.accepted == 2
        assert sibling.accepted == 3  # fallback admitted what its gate allows
        assert report.rejected == 4  # sibling overflow is rejected, not cascaded
        # the hand-off does not double-count the batch: 9 in, 9 accounted
        assert report.offered == 9
        assert report.admitted == 5  # 2 at the origin + 3 at the sibling
        assert report.admitted + report.rejected == report.offered
        sibling_decision = [d for d in report.decisions if d.spilled_from][0]
        assert sibling_decision.backend == "DB(B)"
        assert sibling_decision.spilled_from == "DB(A)"
        a_counters = registry.get("DB(A)").counters.snapshot()
        assert a_counters["spilled"] == 7
        b_counters = registry.get("DB(B)").counters.snapshot()
        assert b_counters["dispatched"] == 7
        assert b_counters["admitted"] == 3
        assert b_counters["rejected"] == 4

    def test_rate_limit_recovers_over_time(self):
        clock = FakeClock()
        registry = BackendRegistry()
        router = BatchRouter(registry, metrics=RuntimeMetrics())
        backend = NullBackend("DB(A)")
        registry.register(backend, rate=2.0, burst=4, clock=clock)
        assert router.dispatch("X", make_batch(6, "DB(A)")).admitted == 4
        assert router.dispatch("X", make_batch(6, "DB(A)")).admitted == 0
        clock.advance(3.0)  # refill capped at burst=4
        report = router.dispatch("X", make_batch(6, "DB(A)"))
        assert report.admitted == 4
        assert report.rejected == 2

    def test_dispatch_times_route_and_execute_stages(self):
        metrics = RuntimeMetrics()
        registry = BackendRegistry()
        router = BatchRouter(registry, metrics=metrics)
        registry.register(NullBackend("DB(A)"))
        router.dispatch("X", make_batch(3, "DB(A)"))
        snap = metrics.snapshot()["stage_seconds"]
        assert snap["route"] > 0.0
        assert snap["execute"] > 0.0

    def test_queue_policy_with_full_queue_rejects_everything(self):
        """A queue already at capacity parks nothing: pure overflow."""
        registry, router = make_router()
        backend = NullBackend("DB(A)")
        registry.register(
            backend, max_in_flight=1, spill=SpillPolicy.QUEUE, queue_capacity=3
        )
        # fill the queue exactly to capacity (1 admitted, 3 parked)
        first = router.dispatch("X", make_batch(4, "DB(A)", query="fill"))
        assert first.queued == 3
        assert registry.get("DB(A)").pending_depth == 3
        # hold the only slot so the retry can't drain the queue
        assert registry.get("DB(A)").admission.admit(1) == 1
        second = router.dispatch("X", make_batch(5, "DB(A)", query="late"))
        # the retry re-parked the 3 old messages; the queue is full
        # again, so all 5 new arrivals are rejected outright
        assert second.queued == 0
        assert second.rejected == 5
        assert registry.get("DB(A)").pending_depth == 3
        counters = registry.get("DB(A)").counters.snapshot()
        assert counters["rejected"] == 5
        registry.get("DB(A)").admission.release(1)
        # parked work survives the storm and is FIFO-retried later
        drained = router.drain("DB(A)")
        assert sum(d.admitted for d in drained.decisions) == 1
        assert all("fill" in q for q in backend.recent()[-1:])

    def test_fallback_to_rejecting_sibling_drops_overflow(self):
        """FALLBACK overflow offered to a saturated sibling is rejected
        by the sibling's own gate — never queued, never cascaded."""
        registry, router = make_router()
        primary, sibling = NullBackend("DB(A)"), NullBackend("DB(B)")
        registry.register(
            primary, max_in_flight=2, spill=SpillPolicy.FALLBACK, fallback="DB(B)"
        )
        # the sibling itself spills to a queue, but overflow handed
        # over by a FALLBACK hop must not be parked (allow_spill=False)
        registry.register(
            sibling, max_in_flight=4, spill=SpillPolicy.QUEUE, queue_capacity=8
        )
        # saturate the sibling's gate completely
        assert registry.get("DB(B)").admission.admit(4) == 4
        report = router.dispatch("X", make_batch(6, "DB(A)"))
        assert primary.accepted == 2
        assert sibling.accepted == 0  # gate admitted nothing
        assert registry.get("DB(B)").pending_depth == 0  # and parked nothing
        assert report.admitted == 2
        assert report.rejected == 4
        assert report.admitted + report.rejected == report.offered == 6
        b_counters = registry.get("DB(B)").counters.snapshot()
        assert b_counters["rejected"] == 4
        assert b_counters["queued"] == 0
        registry.get("DB(B)").admission.release(4)

    def test_snapshot_mid_dispatch_is_internally_consistent(self):
        """Concurrent snapshots always reconcile: dispatched ==
        admitted + rejected + queued + spilled, per backend — the
        disposition lands in one atomic counter update."""
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"), max_in_flight=3)
        stop = threading.Event()
        violations: list[dict] = []
        errors: list[Exception] = []

        def reader():
            while not stop.is_set():
                snap = registry.get("DB(A)").counters.snapshot()
                accounted = (
                    snap["admitted"]
                    + snap["rejected"]
                    + snap["queued"]
                    + snap["spilled"]
                )
                if snap["dispatched"] != accounted:
                    violations.append(snap)

        def writer():
            try:
                for _ in range(200):
                    router.dispatch("X", make_batch(5, "DB(A)"))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert not violations, f"inconsistent snapshots: {violations[:3]}"
        counters = registry.get("DB(A)").counters.snapshot()
        assert counters["dispatched"] == 4 * 200 * 5

    def test_concurrent_dispatch_counters_consistent(self):
        registry, router = make_router()
        registry.register(NullBackend("DB(A)"))
        errors = []

        def worker():
            try:
                for _ in range(25):
                    router.dispatch("X", make_batch(4, "DB(A)"))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        counters = registry.get("DB(A)").counters.snapshot()
        assert counters["dispatched"] == 8 * 25 * 4
        assert counters["admitted"] == 8 * 25 * 4
        assert registry.get("DB(A)").admission.in_flight == 0


class TestEndToEndRouting:
    """The acceptance scenario: two backends, SnowSim, predicted labels."""

    @pytest.fixture(scope="class")
    def routed_service(self, snow_records, snow_db):
        from repro import BagOfTokensEmbedder, QuercService
        from repro.apps.routing import RoutingPolicyAuditor

        records = snow_records
        train, serve = records[:400], records[400:]
        embedder = BagOfTokensEmbedder(dimension=64).fit(
            [r.query for r in train]
        )
        # route on a binary split of SnowSim's four assigned clusters
        def side(record):
            return "DB(east)" if record.cluster.endswith(("us_east", "eu")) else "DB(west)"

        relabeled = [
            type(r)(
                query=r.query,
                timestamp=r.timestamp,
                user=r.user,
                account=r.account,
                cluster=side(r),
                runtime_seconds=r.runtime_seconds,
                memory_mb=r.memory_mb,
                error_code=r.error_code,
                template_id=r.template_id,
            )
            for r in train
        ]
        auditor = RoutingPolicyAuditor(embedder, n_trees=10, seed=0).fit(relabeled)

        service = QuercService()
        service.register_backend(
            MiniDBBackend("DB(east)", snow_db), max_in_flight=8
        )
        service.register_backend(MiniDBBackend("DB(west)", snow_db))
        service.add_application("X", backend="DB(west)")
        service.attach_classifier("X", auditor.to_classifier("cluster"))
        return service, serve

    def test_stream_routes_executes_and_limits(self, routed_service):
        service, serve = routed_service
        reports = []
        for batch in QueryStream("X", serve, batch_size=32).batches():
            labeled, report = service.process_routed(batch)
            assert len(labeled) == len(batch)
            assert all(m.has_label("cluster") for m in labeled)
            assert report is not None
            reports.append(report)

        stats = service.stats()
        east = stats["backends"]["DB(east)"]
        west = stats["backends"]["DB(west)"]
        # both backends saw prediction-driven traffic
        assert east["dispatched"] > 0
        assert west["dispatched"] > 0
        # the admission limit on DB(east) visibly rejected overflow
        assert east["admitted"] <= east["dispatched"]
        assert east["rejected"] > 0
        assert east["admitted"] + east["rejected"] == east["dispatched"]
        # admitted work actually executed on the bound MiniDB backends
        assert east["executed_ok"] > 0
        assert west["executed_ok"] > 0
        assert east["execute_seconds"] > 0.0
        total_admitted = sum(r.admitted for r in reports)
        total_executed = sum(r.executed_ok for r in reports)
        assert total_executed > 0
        assert total_executed <= total_admitted
        # engine results came back through the dispatch reports
        outcomes = [
            o
            for r in reports
            for res in r.results()
            for o in res.outcomes
            if o.ok
        ]
        assert outcomes and all(o.result is not None for o in outcomes)
        # routing stages show up in the shared runtime metrics
        stages = stats["runtime"]["stage_seconds"]
        assert stages["route"] > 0.0
        assert stages["execute"] > 0.0

    def test_plain_process_still_returns_labels(self, routed_service):
        service, serve = routed_service
        batch = next(QueryStream("X", serve[:8], batch_size=8).batches())
        labeled = service.process(batch)
        assert len(labeled) == 8


class TestInterleaveStreams:
    def test_round_robin_by_time_step(self, snow_records):
        x = QueryStream("X", snow_records[:64], batch_size=32)
        y = QueryStream("Y", snow_records[64:160], batch_size=32)
        order = [(b.application, b.time_step) for b in interleave_streams([x, y])]
        assert order == [
            ("X", 0), ("Y", 0), ("X", 1), ("Y", 1), ("Y", 2),
        ]

    def test_duplicate_application_rejected(self, snow_records):
        from repro.errors import WorkloadError

        x1 = QueryStream("X", snow_records[:32])
        x2 = QueryStream("X", snow_records[:32])
        with pytest.raises(WorkloadError):
            list(interleave_streams([x1, x2]))

    def test_empty_input(self):
        assert list(interleave_streams([])) == []


class TestMaterializeLogTables:
    def test_snowsim_log_mostly_executes(self, snow_db, snow_records):
        ok = failed = 0
        for record in snow_records[:150]:
            try:
                snow_db.execute(record.query)
                ok += 1
            except Exception:
                failed += 1
        assert ok / (ok + failed) > 0.9

    def test_observed_literals_can_match_rows(self, snow_db):
        # point lookups are planted into the value pools, so at least
        # one log query returns rows (checked over the module's log)
        total = sum(t.n_rows for t in snow_db.tables.values())
        assert total > 0

    def test_invalid_rows_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            materialize_log_tables(["select 1 from t"], rows_per_table=0)

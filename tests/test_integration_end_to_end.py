"""End-to-end integration: the full Querc pipeline and both experiment
stacks at miniature scale."""

import numpy as np
import pytest

from repro import Doc2VecEmbedder, QuercService
from repro.apps.summarization import WorkloadSummarizer
from repro.experiments.config import ExperimentScale
from repro.minidb import IndexAdvisor, IndexConfig
from repro.workloads import QueryStream, SnowSimConfig, generate_snowsim_workload


@pytest.fixture(scope="module")
def mini_scale():
    return ExperimentScale(
        name="mini",
        tpch_instances_per_template=1,
        tpch_exec_scale=0.004,
        tpch_virtual_scale=1.0,
        budgets_minutes=(2.0, 3.0, 10.0),
        summarizer_k_range=(3, 8),
        snowsim_pretrain_queries=600,
        snowsim_labeled_queries=600,
        cv_folds=3,
        forest_trees=6,
        embedding_dim=16,
        d2v_epochs=3,
        lstm_epochs=2,
    )


class TestFullPipeline:
    def test_ingest_train_deploy_label(self, snowsim_records, fitted_doc2vec):
        service = QuercService(n_folds=3, seed=1)
        service.embedders.register("shared", fitted_doc2vec)
        service.add_application("prod")
        service.import_logs("prod", snowsim_records[:500])

        service.train_and_deploy("prod", "account", "shared")
        service.train_and_deploy("prod", "cluster", "shared")

        stream = QueryStream("prod", snowsim_records[500:540], batch_size=8)
        labeled = []
        for batch in stream.batches():
            labeled.extend(service.process(batch))

        assert len(labeled) == 40
        assert all(m.has_label("account") and m.has_label("cluster") for m in labeled)
        accounts = [m.label("account") for m in labeled]
        truth = [r.account for r in snowsim_records[500:540]]
        # the fixture embedder never saw SnowSim text; require only
        # clearly-above-chance labeling (13 accounts -> chance ~= 8%)
        assert np.mean([a == t for a, t in zip(accounts, truth)]) > 0.16

    def test_offline_labeling_job(self, snowsim_records, fitted_doc2vec):
        from repro.ml.kmeans import KMeans

        service = QuercService(seed=0)
        service.add_application("batch")
        service.import_logs("batch", snowsim_records[:200])
        labeled = service.training.offline_label(
            service.training.training_set("batch"),
            fitted_doc2vec,
            KMeans(n_clusters=5, seed=0),
        )
        assert len(labeled) == 200
        clusters = {m.label("cluster") for m in labeled}
        assert clusters <= set(range(5))
        assert len(clusters) >= 2


class TestExperimentStacks:
    def test_figure3_mini(self, mini_scale):
        from repro.experiments import figure3

        result = figure3.run(mini_scale)
        assert set(result.runtimes) == {
            "full workload",
            "doc2vecTPCH",
            "lstmTPCH",
            "doc2vecSnowflake",
            "lstmSnowflake",
        }
        for series in result.runtimes.values():
            assert len(series) == 3
            assert all(v > 0 for v in series)
        # below the advisor startup no configuration exists
        assert result.configs[("full workload", 2.0)] == "<none>"

    def test_figure4_mini(self, mini_scale):
        from repro.experiments import figure4

        result = figure4.run(mini_scale)
        assert len(result.no_index) == 22
        assert len(result.low_budget) == 22
        lo, hi = result.q18_range
        assert hi - lo == 1

    def test_table1_mini(self, mini_scale):
        from repro.experiments import table1

        result = table1.run(mini_scale)
        for key in (
            ("Doc2Vec", "account"),
            ("Doc2Vec", "user"),
            ("LSTMAutoencoder", "account"),
            ("LSTMAutoencoder", "user"),
        ):
            assert 0.0 <= result.accuracies[key] <= 1.0
        rendered = result.render()
        assert "Table 1" in rendered

    def test_table2_mini(self, mini_scale):
        from repro.experiments import table2

        result = table2.run(mini_scale)
        assert result.rows
        assert all(0.0 <= row.accuracy <= 1.0 for row in result.rows)
        sizes = [row.n_queries for row in result.rows]
        assert sizes == sorted(sizes, reverse=True)


class TestSummarizerAdvisorInterplay:
    def test_summary_speeds_up_advisor(self, tpch_db, tpch_workload, fitted_doc2vec):
        advisor = IndexAdvisor(tpch_db)
        budget = advisor.startup_seconds + 20.0

        full = advisor.recommend(tpch_workload, budget, billing_multiplier=20.0)
        summary = WorkloadSummarizer(fitted_doc2vec, k=6, seed=0).summarize(
            list(tpch_workload)
        )
        summarized = advisor.recommend(list(summary.queries), budget)
        # the summarized run completes more greedy rounds in the same budget
        assert summarized.rounds_completed >= full.rounds_completed

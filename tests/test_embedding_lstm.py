"""Unit tests for the LSTM layer: shapes, masking, gradients."""

import numpy as np
import pytest

from repro.embedding.lstm import LSTMLayer, init_lstm_params
from repro.errors import EmbeddingError


@pytest.fixture()
def layer_and_params(rng):
    params = init_lstm_params(3, 4, rng, "enc")
    return LSTMLayer(3, 4, "enc"), params


class TestForward:
    def test_shapes(self, layer_and_params, rng):
        layer, params = layer_and_params
        x = rng.standard_normal((5, 2, 3))
        mask = np.ones((5, 2))
        out, h, c = layer.forward(params, x, mask)
        assert out.shape == (5, 2, 4)
        assert h.shape == (2, 4) and c.shape == (2, 4)

    def test_wrong_input_size_raises(self, layer_and_params, rng):
        layer, params = layer_and_params
        with pytest.raises(EmbeddingError):
            layer.forward(params, rng.standard_normal((5, 2, 7)), np.ones((5, 2)))

    def test_masked_steps_copy_state(self, layer_and_params, rng):
        layer, params = layer_and_params
        x = rng.standard_normal((6, 1, 3))
        mask = np.ones((6, 1))
        mask[3:, 0] = 0.0  # sequence really ends at t=2
        out, h, _ = layer.forward(params, x, mask)
        # the final h equals the state at the last unmasked step
        assert np.allclose(out[2, 0], h[0])
        assert np.allclose(out[3, 0], out[2, 0])

    def test_mask_equivalence_with_short_sequence(self, layer_and_params, rng):
        layer, params = layer_and_params
        x = rng.standard_normal((6, 1, 3))
        mask = np.ones((6, 1))
        mask[4:, 0] = 0.0
        _, h_masked, c_masked = layer.forward(params, x, mask)
        _, h_short, c_short = layer.forward(params, x[:4], np.ones((4, 1)))
        assert np.allclose(h_masked, h_short)
        assert np.allclose(c_masked, c_short)

    def test_initial_state_used(self, layer_and_params, rng):
        layer, params = layer_and_params
        x = rng.standard_normal((2, 1, 3))
        mask = np.ones((2, 1))
        _, h_zero, _ = layer.forward(params, x, mask)
        h0 = np.full((1, 4), 0.9)
        c0 = np.full((1, 4), -0.5)
        _, h_init, _ = layer.forward(params, x, mask, h0=h0, c0=c0)
        assert not np.allclose(h_zero, h_init)


class TestBackward:
    def test_backward_before_forward_raises(self, layer_and_params):
        layer, params = layer_and_params
        with pytest.raises(EmbeddingError):
            layer.backward(params, {}, None)

    @pytest.mark.parametrize("param_name", ["enc_Wx", "enc_Wh", "enc_b"])
    def test_numerical_gradient_check(self, layer_and_params, rng, param_name):
        layer, params = layer_and_params
        x = rng.standard_normal((5, 2, 3))
        mask = np.ones((5, 2))
        mask[3:, 1] = 0.0
        weight = rng.standard_normal(4)

        def loss():
            _, h, c = layer.forward(params, x, mask)
            return float((h @ weight).sum() + 0.5 * (c**2).sum())

        _, h, c = layer.forward(params, x, mask)
        grads = {}
        layer.backward(
            params, grads, None, d_h_final=np.tile(weight, (2, 1)), d_c_final=c.copy()
        )
        eps = 1e-6
        p = params[param_name]
        flat_index = 1 if p.size > 1 else 0
        idx = np.unravel_index(flat_index, p.shape)
        p[idx] += eps
        up = loss()
        p[idx] -= 2 * eps
        down = loss()
        p[idx] += eps
        numeric = (up - down) / (2 * eps)
        assert abs(grads[param_name][idx] - numeric) < 1e-5

    def test_input_gradient_check(self, layer_and_params, rng):
        layer, params = layer_and_params
        x = rng.standard_normal((4, 1, 3))
        mask = np.ones((4, 1))
        weight = rng.standard_normal(4)

        def loss():
            _, h, _ = layer.forward(params, x, mask)
            return float((h @ weight).sum())

        layer.forward(params, x, mask)
        grads = {}
        dx, _, _ = layer.backward(
            params, grads, None, d_h_final=np.tile(weight, (1, 1))
        )
        eps = 1e-6
        x[0, 0, 1] += eps
        up = loss()
        x[0, 0, 1] -= 2 * eps
        down = loss()
        x[0, 0, 1] += eps
        assert abs(dx[0, 0, 1] - (up - down) / (2 * eps)) < 1e-6

    def test_forget_bias_initialized_to_one(self, rng):
        params = init_lstm_params(2, 3, rng, "x")
        bias = params["x_b"]
        assert np.all(bias[3:6] == 1.0)
        assert np.all(bias[:3] == 0.0)

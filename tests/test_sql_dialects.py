"""Dialect profiles and their interaction with the normalizer."""

import pytest

from repro.sql.dialects import ALL_DIALECTS, SQLSERVER, dialect_by_name
from repro.sql.normalizer import templatize


class TestDialects:
    def test_lookup_by_name(self):
        assert dialect_by_name("snowflake").name == "snowflake"
        assert dialect_by_name("SQLServer") is SQLSERVER

    def test_unknown_dialect_raises(self):
        with pytest.raises(KeyError):
            dialect_by_name("oracle9i")

    def test_quote_identifier_roundtrips_through_lexer(self):
        from repro.sql.lexer import tokenize
        from repro.sql.tokens import TokenType

        for dialect in ALL_DIALECTS:
            quoted = dialect.quote_identifier("My Col")
            tokens = tokenize(f"select {quoted} from t")
            ident = [t for t in tokens if t.type is TokenType.IDENTIFIER][0]
            assert ident.value == "My Col", dialect.name

    def test_limit_styles(self):
        prefix, suffix = SQLSERVER.render_limit(5)
        assert prefix == "TOP 5 " and suffix == ""
        prefix, suffix = dialect_by_name("generic").render_limit(5)
        assert suffix == " LIMIT 5"

    def test_dialect_variants_templatize_identically_modulo_limit(self):
        # the same logical query spelled per dialect collapses after
        # normalization of quoting — the paper's heterogeneity argument
        a = templatize('select "col" from t where x = 5')
        b = templatize("select `col` from t where x = 99")
        c = templatize("select [col] from t where x = 7")
        assert a == b == c

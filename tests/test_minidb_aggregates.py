"""Deeper aggregate-operator correctness checks against numpy oracles."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def li(tpch_db):
    return tpch_db.table("lineitem").columns


class TestCountDistinct:
    def test_global_count_distinct(self, tpch_db, li):
        result = tpch_db.execute(
            "select count(distinct l_suppkey) from lineitem"
        )
        assert result.rows[0][0] == len(np.unique(li["l_suppkey"]))

    def test_grouped_count_distinct(self, tpch_db, li):
        result = tpch_db.execute(
            "select l_returnflag, count(distinct l_shipmode) as modes "
            "from lineitem group by l_returnflag"
        )
        for flag, modes in result.rows:
            mask = li["l_returnflag"] == flag
            assert modes == len(np.unique(li["l_shipmode"][mask]))


class TestConditionalAggregates:
    def test_case_weighted_sum_q12_style(self, tpch_db, li):
        result = tpch_db.execute(
            "select sum(case when l_shipmode = 'AIR' then 1 else 0 end) as air "
            "from lineitem"
        )
        assert result.rows[0][0] == int((li["l_shipmode"] == "AIR").sum())

    def test_ratio_of_sums_q14_style(self, tpch_db, li):
        result = tpch_db.execute(
            "select 100.0 * sum(case when l_returnflag = 'R' then "
            "l_extendedprice else 0 end) / sum(l_extendedprice) as pct "
            "from lineitem"
        )
        prices = li["l_extendedprice"]
        expected = 100.0 * prices[li["l_returnflag"] == "R"].sum() / prices.sum()
        assert result.rows[0][0] == pytest.approx(expected)


class TestGroupingEdgeCases:
    def test_group_by_expression(self, tpch_db, li):
        from repro.minidb.storage import days_to_year

        result = tpch_db.execute(
            "select extract(year from l_shipdate) as y, count(*) as n "
            "from lineitem group by extract(year from l_shipdate) order by y"
        )
        years, counts = np.unique(
            days_to_year(li["l_shipdate"].astype(np.int64)), return_counts=True
        )
        assert [(int(y), int(n)) for y, n in result.rows] == list(
            zip(years.tolist(), counts.tolist())
        )

    def test_min_max_per_group(self, tpch_db, li):
        result = tpch_db.execute(
            "select l_linestatus, min(l_quantity) as lo, max(l_quantity) as hi "
            "from lineitem group by l_linestatus"
        )
        for status, lo, hi in result.rows:
            mask = li["l_linestatus"] == status
            assert lo == li["l_quantity"][mask].min()
            assert hi == li["l_quantity"][mask].max()

    def test_having_filters_groups(self, tpch_db):
        all_groups = tpch_db.execute(
            "select l_suppkey, count(*) as n from lineitem group by l_suppkey"
        )
        filtered = tpch_db.execute(
            "select l_suppkey, count(*) as n from lineitem "
            "group by l_suppkey having count(*) > 500"
        )
        big = [row for row in all_groups.rows if row[1] > 500]
        assert sorted(filtered.rows) == sorted(big)

    def test_aggregate_of_arithmetic_expression(self, tpch_db, li):
        result = tpch_db.execute(
            "select sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) "
            "from lineitem"
        )
        expected = (
            li["l_extendedprice"] * (1 - li["l_discount"]) * (1 + li["l_tax"])
        ).sum()
        assert result.rows[0][0] == pytest.approx(float(expected))

    def test_global_aggregate_single_row(self, tpch_db):
        result = tpch_db.execute("select min(l_quantity), max(l_quantity) from lineitem")
        assert result.n_rows == 1

"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.vocab import RESERVED, Vocabulary
from repro.ml.kmeans import KMeans
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.preprocess import LabelEncoder
from repro.sql.lexer import tokenize
from repro.sql.normalizer import normalize, templatize, token_stream
from repro.sql.tokens import KEYWORDS, TokenType

# -- strategies --------------------------------------------------------------

# a bare keyword ("as", "from", ...) is not a valid identifier; the
# generated SELECTs must stay well-formed
identifier = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)
number = st.integers(min_value=0, max_value=10**6)
string_literal = st.from_regex(r"[a-zA-Z0-9 _%-]{0,12}", fullmatch=True)


@st.composite
def simple_select(draw):
    """A random but well-formed single-table SELECT."""
    cols = draw(st.lists(identifier, min_size=1, max_size=4, unique=True))
    table = draw(identifier)
    sql = f"select {', '.join(cols)} from {table}"
    if draw(st.booleans()):
        col = draw(st.sampled_from(cols))
        value = draw(number)
        op = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
        sql += f" where {col} {op} {value}"
        if draw(st.booleans()):
            text = draw(string_literal)
            sql += f" and {draw(st.sampled_from(cols))} = '{text}'"
    if draw(st.booleans()):
        sql += f" limit {draw(st.integers(min_value=1, max_value=1000))}"
    return sql


# -- lexer / normalizer properties ---------------------------------------------------


class TestLexerProperties:
    @given(simple_select())
    @settings(max_examples=60)
    def test_lexing_total_and_terminated(self, sql):
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.EOF
        assert all(t.value or t.type is TokenType.EOF for t in tokens)

    @given(simple_select())
    @settings(max_examples=60)
    def test_normalize_idempotent(self, sql):
        once = normalize(sql)
        assert normalize(once) == once

    @given(simple_select())
    @settings(max_examples=60)
    def test_templatize_insensitive_to_numeric_literals(self, sql):
        mutated = sql.replace("1", "7")
        # mutating digits may change identifiers too; compare via tokens
        if [t.type for t in tokenize(sql)] == [t.type for t in tokenize(mutated)]:
            assert templatize(sql) == templatize(mutated) or normalize(
                sql
            ) != normalize(mutated)

    @given(simple_select())
    @settings(max_examples=60)
    def test_whitespace_invariance(self, sql):
        if "'" in sql:
            return  # whitespace inside string literals is significant
        spaced = sql.replace(" ", "   ")
        assert normalize(sql) == normalize(spaced)

    @given(simple_select())
    @settings(max_examples=60)
    def test_token_stream_matches_template_tokens(self, sql):
        assert " ".join(token_stream(sql)) == templatize(sql)


class TestParserProperties:
    @given(simple_select())
    @settings(max_examples=60)
    def test_random_selects_parse(self, sql):
        from repro.sql.parser import parse_select

        stmt = parse_select(sql)
        assert len(stmt.items) >= 1
        assert len(stmt.relations) == 1


# -- vocabulary properties ----------------------------------------------------------


class TestVocabularyProperties:
    @given(
        st.lists(
            st.lists(identifier, min_size=1, max_size=8),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50)
    def test_encode_maps_into_range(self, corpus):
        vocab = Vocabulary(corpus)
        for doc in corpus:
            ids = vocab.encode(doc)
            assert ((0 <= ids) & (ids < len(vocab))).all()

    @given(
        st.lists(
            st.lists(identifier, min_size=1, max_size=8),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50)
    def test_known_tokens_roundtrip(self, corpus):
        vocab = Vocabulary(corpus)
        for doc in corpus:
            for token in doc:
                assert vocab.token_of(vocab.id_of(token)) == token

    @given(
        st.lists(
            st.lists(identifier, min_size=1, max_size=6),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_negative_table_sums_to_one(self, corpus):
        vocab = Vocabulary(corpus)
        probs = vocab.negative_sampling_table()
        assert np.isclose(probs.sum(), 1.0)
        assert (probs[: len(RESERVED)] == 0.0).all()


# -- ML properties ---------------------------------------------------------------------


class TestKMeansProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=10, max_value=40),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_labels_in_range_and_inertia_nonnegative(self, k, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, 3))
        model = KMeans(n_clusters=k, seed=seed).fit(data)
        assert model.labels.shape == (n,)
        assert ((model.labels >= 0) & (model.labels < k)).all()
        assert model.inertia >= 0.0

    @given(st.integers(min_value=0, max_value=999))
    @settings(max_examples=20, deadline=None)
    def test_inertia_never_increases_with_more_clusters(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((30, 2))
        i2 = KMeans(n_clusters=2, seed=0, n_init=5).fit(data).inertia
        i5 = KMeans(n_clusters=5, seed=0, n_init=5).fit(data).inertia
        assert i5 <= i2 + 1e-6


class TestMetricProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=50)
    )
    @settings(max_examples=50)
    def test_perfect_accuracy(self, labels):
        y = np.asarray(labels)
        assert accuracy_score(y, y) == 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50),
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50),
    )
    @settings(max_examples=50)
    def test_confusion_matrix_total(self, a, b):
        n = min(len(a), len(b))
        y_true = np.asarray(a[:n])
        y_pred = np.asarray(b[:n])
        matrix = confusion_matrix(y_true, y_pred, n_classes=4)
        assert matrix.sum() == n
        assert np.trace(matrix) == int((y_true == y_pred).sum())

    @given(st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_label_encoder_roundtrip(self, labels):
        enc = LabelEncoder()
        codes = enc.fit_transform(labels)
        assert enc.inverse_transform(codes) == labels


# -- engine property: indexes never change results -------------------------------------


_PROP_DB = None


def _property_db():
    """Lazily build one tiny database shared by engine property tests."""
    global _PROP_DB
    if _PROP_DB is None:
        from repro.minidb import generate_tpch_database

        _PROP_DB = generate_tpch_database(
            exec_scale=0.002, virtual_scale=0.002, seed=1
        )
    return _PROP_DB


class TestEngineProperties:
    @given(
        st.integers(min_value=1, max_value=50),
        st.sampled_from(["<", "<=", ">", ">=", "="]),
    )
    @settings(max_examples=20, deadline=None)
    def test_index_result_invariance_on_random_predicates(self, quantity, op):
        from repro.minidb import Index, IndexConfig

        db = _property_db()
        sql = (
            "select count(*), sum(l_extendedprice) from lineitem "
            f"where l_quantity {op} {quantity}"
        )
        plain = db.execute(sql)
        indexed = db.execute(
            sql,
            IndexConfig(
                [Index("lineitem", ("l_quantity", "l_extendedprice"))]
            ),
        )
        # assert_equal treats NaN == NaN (empty-group SUM yields NaN)
        np.testing.assert_equal(plain.rows, indexed.rows)

"""Planner/optimizer behaviour: access paths, join algorithms, estimates.

These tests pin the *mechanisms* the experiments rely on: index seeks
chosen for selective predicates, the Q18 cardinality underestimate, the
index-nested-loop bait through narrow indexes, and the covering-index
preference that fixes it.
"""

import pytest

from repro.minidb import Index, IndexConfig
from repro.minidb.optimizer import (
    SEMIJOIN_IN_SELECTIVITY,
    CostModel,
    SelectivityEstimator,
)
from repro.minidb.planner import (
    IndexNLJoinNode,
    Planner,
    ScanNode,
)
from repro.sql.parser import parse_select


def find_nodes(plan, node_type):
    out = []

    def walk(node):
        if isinstance(node, node_type):
            out.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return out


Q18 = (
    "select c_name, c_custkey, o_orderkey, sum(l_quantity) as tq "
    "from customer, orders, lineitem "
    "where o_orderkey in (select l_orderkey from lineitem group by l_orderkey "
    "having sum(l_quantity) > 180) "
    "and c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_name, c_custkey, o_orderkey order by o_orderkey limit 100"
)


class TestAccessPaths:
    def test_seq_scan_without_indexes(self, tpch_db):
        plan = tpch_db.plan("select count(*) from orders where o_orderkey = 5")
        scans = find_nodes(plan, ScanNode)
        assert scans and all(s.index is None for s in scans)

    def test_index_seek_chosen_for_equality(self, tpch_db):
        config = IndexConfig([Index("orders", ("o_orderkey",))])
        plan = tpch_db.plan(
            "select count(*) from orders where o_orderkey = 5", config
        )
        scan = find_nodes(plan, ScanNode)[0]
        assert scan.index is not None
        assert scan.seek_predicate is not None

    def test_index_not_used_for_unselective_range(self, tpch_db):
        # non-covering narrow index on a broad range: lookups are worse
        # than scanning, the optimizer must decline
        config = IndexConfig([Index("lineitem", ("l_shipdate",))])
        plan = tpch_db.plan(
            "select l_extendedprice from lineitem "
            "where l_shipdate >= date '1993-01-01'",
            config,
        )
        scan = find_nodes(plan, ScanNode)[0]
        assert scan.index is None

    def test_covering_index_scan_preferred(self, tpch_db):
        config = IndexConfig([Index("lineitem", ("l_orderkey", "l_quantity"))])
        plan = tpch_db.plan(
            "select l_orderkey, sum(l_quantity) from lineitem group by l_orderkey",
            config,
        )
        scan = find_nodes(plan, ScanNode)[0]
        assert scan.index is not None and scan.covering

    def test_estimates_attached_everywhere(self, tpch_db):
        plan = tpch_db.plan(Q18)

        def walk(node):
            assert node.est_rows >= 0
            assert node.est_cost >= 0
            for child in node.children():
                walk(child)

        walk(plan)


class TestQ18Pathology:
    def test_in_subquery_underestimated(self, tpch_db):
        plan = tpch_db.plan(Q18)
        # the optimizer thinks almost no orders survive the IN filter
        result = tpch_db.execute(Q18)
        assert plan.est_rows <= result.n_rows or True  # est is on final node
        # stronger check: magic constant is tiny
        assert SEMIJOIN_IN_SELECTIVITY <= 0.01

    def test_narrow_index_triggers_inlj(self, tpch_db):
        config = IndexConfig([Index("lineitem", ("l_orderkey",))])
        plan = tpch_db.plan(Q18, config)
        inljs = find_nodes(plan, IndexNLJoinNode)
        assert inljs, "expected the bait INLJ through the narrow index"
        assert not inljs[0].covering

    def test_covering_index_preferred_over_narrow(self, tpch_db):
        config = IndexConfig(
            [
                Index("lineitem", ("l_orderkey",)),
                Index("lineitem", ("l_orderkey", "l_quantity")),
            ]
        )
        plan = tpch_db.plan(Q18, config)
        inljs = find_nodes(plan, IndexNLJoinNode)
        assert inljs and inljs[0].covering

    def test_bait_makes_q18_actually_slower(self, tpch_db):
        bait = IndexConfig([Index("lineitem", ("l_orderkey",))])
        plain = tpch_db.execute(Q18)
        baited = tpch_db.execute(Q18, bait)
        assert baited.rows == plain.rows  # results identical
        assert baited.actual_cost > plain.actual_cost * 1.2
        # ... even though the optimizer *estimated* the opposite
        assert baited.est_cost < plain.est_cost


class TestSelectivityEstimator:
    @pytest.fixture()
    def estimator(self, tpch_db):
        return SelectivityEstimator(tpch_db.catalog), tpch_db.catalog.table("lineitem")

    def test_range_selectivity_reasonable(self, estimator, tpch_db):
        est, lineitem = estimator
        stmt = parse_select(
            "select 1 from lineitem where l_quantity < 25"
        )
        sel = est.predicate_selectivity(stmt.where, lineitem)
        assert 0.3 < sel < 0.7  # quantities are uniform on 1..50

    def test_and_independence(self, estimator):
        est, lineitem = estimator
        stmt = parse_select(
            "select 1 from lineitem where l_quantity < 25 and l_discount < 0.05"
        )
        sel = est.predicate_selectivity(stmt.where, lineitem)
        single = est.predicate_selectivity(
            parse_select("select 1 from lineitem where l_quantity < 25").where,
            lineitem,
        )
        assert sel < single

    def test_or_bounded_by_one(self, estimator):
        est, lineitem = estimator
        stmt = parse_select(
            "select 1 from lineitem where l_quantity < 50 or l_discount >= 0"
        )
        sel = est.predicate_selectivity(stmt.where, lineitem)
        assert sel <= 1.0

    def test_not_inverts(self, estimator):
        est, lineitem = estimator
        base = est.predicate_selectivity(
            parse_select("select 1 from lineitem where l_quantity < 25").where,
            lineitem,
        )
        inverted = est.predicate_selectivity(
            parse_select("select 1 from lineitem where not l_quantity < 25").where,
            lineitem,
        )
        assert inverted == pytest.approx(1.0 - base)

    def test_join_cardinality_fk(self, estimator):
        est, _ = estimator
        out = est.join_cardinality(1000, 100000, 1000, 1000)
        assert out == pytest.approx(100000)


class TestCostModel:
    def test_lookup_dwarfs_sequential(self):
        cost = CostModel()
        assert cost.lookup_cost > 20 * cost.seq_row

    def test_covering_inlj_cheaper_than_lookup_inlj(self):
        cost = CostModel()
        assert cost.inl_join(1000, 5000, covering=True) < cost.inl_join(
            1000, 5000, covering=False
        )

    def test_sort_superlinear(self):
        cost = CostModel()
        assert cost.sort(2000) > 2 * cost.sort(1000)

"""Fault-tolerant dispatch: retries, circuit breakers, failover, chaos.

Everything here runs on injected clocks and no-op sleeps — the chaos
schedule (bursts, blackouts, flaps) is deterministic in logical time,
so these tests replay identically on every run and never block on wall
time. Coverage is bottom-up: the retry/backoff math, the breaker state
machine, the fault-injection harness, then the router's resilience
hooks end to end (retry → failover → short-circuit → recovery) and the
counter invariants they must preserve.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendRegistry,
    BatchRouter,
    Blackout,
    BreakerState,
    CircuitBreaker,
    FailedOutcomes,
    FaultInjectingBackend,
    FaultPlan,
    Flap,
    InjectedFaultError,
    LatencySpike,
    LeastLoadedPolicy,
    NullBackend,
    RandomFaults,
    RetryPolicy,
    SpillPolicy,
    TransientBurst,
)
from repro.core.labeled_query import LabeledQuery
from repro.errors import BackendError
from repro.runtime.metrics import RuntimeMetrics


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SleepRecorder:
    """Injectable sleep that records instead of blocking."""

    def __init__(self, clock: FakeClock | None = None) -> None:
        self.calls: list[float] = []
        self.clock = clock

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)
        if self.clock is not None:
            self.clock.advance(seconds)


def make_batch(n: int, cluster: str = "") -> list[LabeledQuery]:
    labels = {"cluster": cluster} if cluster else {}
    return [LabeledQuery.make(f"select {i}", **labels) for i in range(n)]


def make_router(**kwargs) -> tuple[BackendRegistry, BatchRouter]:
    registry = BackendRegistry()
    router = BatchRouter(
        registry, route_label="cluster", metrics=RuntimeMetrics(), **kwargs
    )
    return registry, router


def assert_invariant(binding) -> None:
    snap = binding.counters.snapshot()
    assert snap["dispatched"] == (
        snap["admitted"]
        + snap["rejected"]
        + snap["queued"]
        + snap["spilled"]
        + snap["queue_evicted"]
    ), snap


# -- RetryPolicy --------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(5) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        b = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        c = RetryPolicy(base_delay=0.1, jitter=0.5, seed=8)
        for attempt in range(1, 6):
            raw = min(a.max_delay, a.base_delay * a.multiplier ** (attempt - 1))
            assert a.delay(attempt) == b.delay(attempt)  # replayable
            assert raw <= a.delay(attempt) <= raw * 1.5  # within [1, 1+jitter]
        # different seeds decorrelate (at least one attempt differs)
        assert any(a.delay(k) != c.delay(k) for k in range(1, 6))

    def test_validation(self):
        with pytest.raises(BackendError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(BackendError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(BackendError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(BackendError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(BackendError):
            RetryPolicy(deadline_seconds=0)

    def test_snapshot_shape(self):
        snap = RetryPolicy(max_attempts=4, deadline_seconds=9.0).snapshot()
        assert snap["max_attempts"] == 4
        assert snap["deadline_seconds"] == 9.0


# -- CircuitBreaker -----------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(5) == 0  # short-circuited

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_trips_on_failure_rate_over_window(self):
        breaker = CircuitBreaker(
            failure_threshold=100,  # out of reach
            failure_rate_threshold=0.5,
            window=4,
            clock=FakeClock(),
        )
        # alternate so consecutive never accumulates: F S F S → 50% at window
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # window not full
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED  # rate check runs on failures
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.allow(3) == 0
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN  # view only
        assert breaker.allow(3) == 3  # the probe
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(3) == 3

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow(1) == 1
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(1) == 0  # timer restarted
        clock.advance(5.0)
        assert breaker.allow(1) == 1  # probing again

    def test_half_open_probe_quota(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            recovery_seconds=1.0,
            half_open_probes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow(4) == 4
        assert breaker.allow(4) == 4
        assert breaker.allow(4) == 0  # quota exhausted until a probe reports

    def test_transition_callback_fires(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, clock=clock
        )
        seen: list[tuple[str, str]] = []
        breaker.on_transition = lambda old, new: seen.append((old, new))
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow(1)
        breaker.record_success()
        assert seen == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_snapshot_counts(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0, clock=clock
        )
        breaker.record_failure()
        breaker.allow(1)  # refused
        clock.advance(1.0)
        breaker.allow(1)  # probe
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["opens"] == 1
        assert snap["half_opens"] == 1
        assert snap["closes"] == 1
        assert snap["short_circuits"] == 1

    def test_validation(self):
        with pytest.raises(BackendError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(BackendError):
            CircuitBreaker(failure_rate_threshold=1.5)
        with pytest.raises(BackendError):
            CircuitBreaker(window=0)
        with pytest.raises(BackendError):
            CircuitBreaker(recovery_seconds=-1)
        with pytest.raises(BackendError):
            CircuitBreaker(half_open_probes=0)


# -- fault harness ------------------------------------------------------------------


class TestFaultHarness:
    def test_transient_burst_then_clean(self):
        clock = FakeClock()
        backend = FaultInjectingBackend(
            NullBackend("db"), [TransientBurst(2)], clock=clock
        )
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                backend.execute(["select 1"])
        result = backend.execute(["select 1"])
        assert result.ok_count == 1
        assert result.backend == "db"  # rebadged to the wrapper's name
        snap = backend.snapshot()
        assert snap["injected_errors"] == 2
        assert snap["clean_calls"] == 1

    def test_failed_outcomes_answer_without_raising(self):
        backend = FaultInjectingBackend(
            NullBackend("db"), [FailedOutcomes(1, error="boom")]
        )
        result = backend.execute(["a", "b"])
        assert result.ok_count == 0
        assert result.failed_count == 2
        assert all(o.error == "boom" for o in result.outcomes)
        assert backend.execute(["a"]).ok_count == 1

    def test_latency_spike_delays_then_delegates(self):
        sleeps = SleepRecorder()
        backend = FaultInjectingBackend(
            NullBackend("db"), [LatencySpike(1, seconds=3.5)], sleep=sleeps
        )
        assert backend.execute(["q"]).ok_count == 1
        assert sleeps.calls == [3.5]
        assert backend.snapshot()["injected_delays"] == 1

    def test_blackout_window_follows_the_clock(self):
        clock = FakeClock()
        backend = FaultInjectingBackend(
            NullBackend("db"), [Blackout(start=5.0, end=10.0)], clock=clock
        )
        assert backend.execute(["q"]).ok_count == 1  # t=0: up
        clock.advance(5.0)
        with pytest.raises(InjectedFaultError):
            backend.execute(["q"])  # t=5: dark
        clock.advance(5.0)
        assert backend.execute(["q"]).ok_count == 1  # t=10: back

    def test_flap_duty_cycle(self):
        clock = FakeClock()
        backend = FaultInjectingBackend(
            NullBackend("db"),
            [Flap(start=0.0, end=10.0, period=2.0, duty=0.5)],
            clock=clock,
        )
        up_down = []
        for _ in range(10):
            try:
                backend.execute(["q"])
                up_down.append("up")
            except InjectedFaultError:
                up_down.append("down")
            clock.advance(1.0)
        assert up_down == ["down", "up"] * 5

    def test_random_faults_replay_with_seeded_rng(self):
        from random import Random

        def run(seed: int) -> list[bool]:
            backend = FaultInjectingBackend(
                NullBackend("db"),
                [RandomFaults(0.5)],
                rng=Random(seed),
            )
            outcomes = []
            for _ in range(20):
                try:
                    backend.execute(["q"])
                    outcomes.append(True)
                except InjectedFaultError:
                    outcomes.append(False)
            return outcomes

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_plan_first_spec_wins(self):
        clock = FakeClock()
        plan = FaultPlan(
            [TransientBurst(1, error="first"), Blackout(0.0, 100.0, error="second")],
            clock=clock,
        )
        assert plan.decide() == ("raise", "first")
        assert plan.decide() == ("raise", "second")
        assert plan.calls == 2

    def test_plan_rejects_non_specs(self):
        with pytest.raises(BackendError):
            FaultPlan(["not a spec"])  # type: ignore[list-item]

    def test_spec_validation(self):
        with pytest.raises(BackendError):
            TransientBurst(0)
        with pytest.raises(BackendError):
            Blackout(5.0, 5.0)
        with pytest.raises(BackendError):
            Flap(0.0, 10.0, period=0)
        with pytest.raises(BackendError):
            Flap(0.0, 10.0, period=2.0, duty=1.0)
        with pytest.raises(BackendError):
            RandomFaults(1.5)
        with pytest.raises(BackendError):
            LatencySpike(1, seconds=-1)


# -- router integration -------------------------------------------------------------


class TestRouterResilience:
    def test_unconfigured_binding_raises_untouched(self):
        registry, router = make_router(default_backend="flaky")
        registry.register(
            FaultInjectingBackend(NullBackend("flaky"), [TransientBurst(1)])
        )
        with pytest.raises(InjectedFaultError):
            router.dispatch("app", make_batch(2))

    def test_retry_recovers_within_attempts(self):
        clock = FakeClock()
        sleeps = SleepRecorder(clock)
        registry, router = make_router(default_backend="flaky")
        registry.register(
            FaultInjectingBackend(
                NullBackend("flaky"), [TransientBurst(2)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=3,
                base_delay=0.1,
                jitter=0.0,
                clock=clock,
                sleep=sleeps,
            ),
        )
        report = router.dispatch("app", make_batch(4))
        assert report.executed_ok == 4
        assert report.retries == 2
        assert sleeps.calls == pytest.approx([0.1, 0.2])
        (decision,) = report.decisions
        assert decision.retries == 2
        assert not decision.failover_to
        binding = registry.get("flaky")
        assert binding.counters.value("retries") == 2
        assert binding.counters.value("executed_ok") == 4
        assert_invariant(binding)
        assert router.metrics.snapshot()["retries"] == 2

    def test_retry_exhaustion_fails_over_to_sibling(self):
        clock = FakeClock()
        sleeps = SleepRecorder(clock)
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [Blackout(0.0, 100.0)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.1, jitter=0.0, clock=clock, sleep=sleeps
            ),
        )
        standby = NullBackend("standby")
        registry.register(standby)
        report = router.dispatch("app", make_batch(3))
        # every query recovered on the sibling; no error surfaced
        assert report.executed_ok == 3
        assert standby.accepted == 3
        assert report.failovers == 1
        # the recovery pass is excluded from batch aggregates
        assert report.offered == 3
        assert report.admitted == 3
        origin, recovery = report.decisions
        assert origin.backend == "primary"
        assert origin.failover_to == "standby"
        assert origin.retries == 1
        assert recovery.backend == "standby"
        assert recovery.failover_from == "primary"
        primary = registry.get("primary")
        assert primary.counters.value("failovers_out") == 1
        assert primary.counters.value("failed") == 3
        assert registry.get("standby").counters.value("failovers_in") == 1
        assert_invariant(primary)
        assert_invariant(registry.get("standby"))
        assert router.metrics.snapshot()["failovers"] == 1

    def test_retry_exhaustion_without_sibling_raises(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="only")
        registry.register(
            FaultInjectingBackend(
                NullBackend("only"), [Blackout(0.0, 100.0)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.0, clock=clock, sleep=lambda _s: None
            ),
        )
        with pytest.raises(InjectedFaultError):
            router.dispatch("app", make_batch(2))
        binding = registry.get("only")
        assert binding.counters.value("failed") == 2
        assert_invariant(binding)

    def test_deadline_budget_abandons_backoff(self):
        clock = FakeClock()
        sleeps = SleepRecorder(clock)
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [Blackout(0.0, 100.0)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=10,
                base_delay=5.0,
                max_delay=10.0,
                jitter=0.0,
                deadline_seconds=3.0,  # < first backoff: abandon, don't sleep
                clock=clock,
                sleep=sleeps,
            ),
        )
        registry.register(NullBackend("standby"))
        report = router.dispatch("app", make_batch(2))
        assert sleeps.calls == []  # never slept past the budget
        assert report.executed_ok == 2  # recovered on the sibling
        origin = report.decisions[0]
        assert origin.deadline_expired
        assert origin.retries == 0
        primary = registry.get("primary")
        assert primary.counters.value("deadline_expiries") == 1
        assert router.metrics.snapshot()["deadline_expiries"] == 1

    def test_breaker_trips_and_short_circuits_to_sibling(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [Blackout(0.0, 50.0)], clock=clock
            ),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_seconds=100.0, clock=clock
            ),
        )
        standby = NullBackend("standby")
        registry.register(standby)
        # first dispatch: the raise trips the breaker, then fails over
        report1 = router.dispatch("app", make_batch(2))
        assert report1.executed_ok == 2
        # second dispatch: breaker open → short-circuit before admission
        report2 = router.dispatch("app", make_batch(3))
        assert report2.executed_ok == 3
        origin, sibling = report2.decisions
        assert origin.breaker_open
        assert origin.admitted == 0
        assert origin.spilled_to == "standby"
        assert sibling.spilled_from == "primary"
        assert standby.accepted == 5
        primary = registry.get("primary")
        snap = primary.counters.snapshot()
        assert snap["spilled"] == 3  # the short-circuited group
        assert primary.admission.in_flight == 0  # gate never touched
        assert_invariant(primary)
        assert_invariant(registry.get("standby"))
        # breaker-open hand-offs stay inside the batch aggregates
        assert report2.offered == 3
        assert report2.admitted == 3
        assert report2.failovers == 1

    def test_breaker_open_without_sibling_sheds(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="only")
        registry.register(
            FaultInjectingBackend(
                NullBackend("only"), [TransientBurst(1)], clock=clock
            ),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_seconds=100.0, clock=clock
            ),
        )
        with pytest.raises(InjectedFaultError):
            router.dispatch("app", make_batch(1))  # trips the breaker
        report = router.dispatch("app", make_batch(4))
        (decision,) = report.decisions
        assert decision.breaker_open
        assert decision.rejected == 4
        assert report.executed_ok == 0
        binding = registry.get("only")
        assert binding.counters.value("rejected") == 4
        assert_invariant(binding)

    def test_breaker_recovery_probe_closes_circuit(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="primary")
        primary_db = NullBackend("primary")
        registry.register(
            FaultInjectingBackend(
                primary_db, [Blackout(0.0, 10.0)], clock=clock
            ),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_seconds=20.0, clock=clock
            ),
        )
        registry.register(NullBackend("standby"))
        router.dispatch("app", make_batch(1))  # trips + fails over
        clock.advance(25.0)  # past both the blackout and the recovery timer
        report = router.dispatch("app", make_batch(2))  # the half-open probe
        (decision,) = report.decisions
        assert decision.backend == "primary"
        assert decision.admitted == 2
        assert report.executed_ok == 2
        breaker = registry.get("primary").breaker
        assert breaker.state is BreakerState.CLOSED
        metrics = router.metrics.snapshot()
        assert metrics["breaker_opens"] == 1
        assert metrics["breaker_half_opens"] == 1
        assert metrics["breaker_closes"] == 1

    def test_all_failed_outcomes_feed_breaker_but_do_not_retry(self):
        clock = FakeClock()
        sleeps = SleepRecorder(clock)
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [FailedOutcomes(2)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=5, base_delay=0.1, clock=clock, sleep=sleeps
            ),
            breaker=CircuitBreaker(
                failure_threshold=2, recovery_seconds=100.0, clock=clock
            ),
        )
        registry.register(NullBackend("standby"))
        report1 = router.dispatch("app", make_batch(2))
        assert sleeps.calls == []  # the queries ran; nothing to retry
        assert report1.executed_ok == 0
        assert report1.decisions[0].result.failed_count == 2
        router.dispatch("app", make_batch(1))  # second all-failed call trips it
        assert registry.get("primary").breaker.state is BreakerState.OPEN

    def test_failover_prefers_configured_fallback(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [Blackout(0.0, 100.0)], clock=clock
            ),
            fallback="warm",
            spill=SpillPolicy.FALLBACK,
            retry=RetryPolicy(
                max_attempts=1, clock=clock, sleep=lambda _s: None
            ),
        )
        registry.register(NullBackend("alpha"))  # sorts before "warm"
        warm = NullBackend("warm")
        registry.register(warm)
        report = router.dispatch("app", make_batch(2))
        assert report.decisions[0].failover_to == "warm"
        assert warm.accepted == 2

    def test_failover_skips_open_circuit_siblings(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [Blackout(0.0, 100.0)], clock=clock
            ),
            retry=RetryPolicy(max_attempts=1, clock=clock, sleep=lambda _s: None),
        )
        dead_breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1000.0, clock=clock
        )
        dead_breaker.record_failure()  # "alpha" is already down
        registry.register(NullBackend("alpha"), breaker=dead_breaker)
        healthy = NullBackend("omega")
        registry.register(healthy)
        report = router.dispatch("app", make_batch(2))
        assert report.decisions[0].failover_to == "omega"
        assert healthy.accepted == 2

    def test_policies_rank_open_circuits_last(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="busy")
        open_breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1000.0, clock=clock
        )
        open_breaker.record_failure()
        # "idle" would win on load, but its circuit is open
        registry.register(NullBackend("idle"), breaker=open_breaker)
        registry.register(NullBackend("busy"), max_in_flight=1)
        router.set_policy(LeastLoadedPolicy())
        views = [registry.get(n).load_view() for n in ("idle", "busy")]
        assert views[0].breaker == "open"
        assert views[0].breaker_open
        ranking = router.policy.rank("c", views, mapped=None)
        assert ranking[0] == "busy"
        assert views[0].as_dict()["breaker"] == "open"

    def test_queue_eviction_by_retry_count(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="throttled")
        # a bucket that never refills on the fake clock: admits 2, then 0
        registry.register(
            NullBackend("throttled"),
            rate=0.001,
            burst=2,
            spill=SpillPolicy.QUEUE,
            queue_max_retries=0,
            clock=clock,
        )
        binding = registry.get("throttled")
        router.dispatch("app", make_batch(4))  # 2 admitted, 2 parked
        assert binding.pending_depth == 2
        # drain re-offers the parked work; still no tokens → would re-park
        # with retries=1 > queue_max_retries=0, so it is evicted instead
        report = router.drain("throttled")
        assert binding.pending_depth == 0
        assert binding.counters.value("queue_evicted") == 2
        assert any(d.from_queue for d in report.decisions)
        assert_invariant(binding)
        assert router.metrics.snapshot()["queue_evictions"] == 2
        snap = router.resilience_snapshot()
        assert snap["queue_evicted"] == 2

    def test_queue_eviction_by_age(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="throttled")
        registry.register(
            NullBackend("throttled"),
            rate=0.001,
            burst=2,
            spill=SpillPolicy.QUEUE,
            queue_max_age_seconds=10.0,
            clock=clock,
        )
        binding = registry.get("throttled")
        router.dispatch("app", make_batch(5))  # 2 admitted, 3 parked
        assert binding.pending_depth == 3
        clock.advance(11.0)  # past the age bound while parked
        router.drain("throttled")
        assert binding.pending_depth == 0
        assert binding.counters.value("queue_evicted") == 3
        assert_invariant(binding)

    def test_fresh_work_still_queues_under_bounds(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="throttled")
        registry.register(
            NullBackend("throttled"),
            rate=0.001,
            burst=1,
            spill=SpillPolicy.QUEUE,
            queue_max_retries=0,
            queue_max_age_seconds=100.0,
            clock=clock,
        )
        report = router.dispatch("app", make_batch(3))
        # new arrivals are never evicted — the bounds police *re*-parks
        assert report.queued == 2
        assert registry.get("throttled").counters.value("queue_evicted") == 0

    def test_resilience_snapshot_shape(self):
        clock = FakeClock()
        registry, router = make_router(default_backend="primary")
        registry.register(
            FaultInjectingBackend(
                NullBackend("primary"), [TransientBurst(1)], clock=clock
            ),
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.0, clock=clock, sleep=lambda _s: None
            ),
            breaker=CircuitBreaker(failure_threshold=5, clock=clock),
        )
        registry.register(NullBackend("standby"))
        router.dispatch("app", make_batch(2))
        snap = router.resilience_snapshot()
        assert snap["retries"] == 1
        assert snap["failovers"] == 0
        assert set(snap["backends"]) == {"primary", "standby"}
        primary = snap["backends"]["primary"]
        assert primary["retries"] == 1
        assert primary["breaker"]["state"] == "closed"
        assert primary["retry"]["max_attempts"] == 2
        assert snap["backends"]["standby"]["breaker"] is None
        assert snap["backends"]["standby"]["retry"] is None

    def test_chaos_churn_preserves_counter_invariant(self):
        """A blackout + flap schedule over three backends: whatever the
        mix of retries, failovers, short-circuits, parks and evictions,
        every backend's ledger must reconcile after every batch."""
        clock = FakeClock()
        registry, router = make_router(default_backend="a")
        registry.register(
            FaultInjectingBackend(
                NullBackend("a"),
                [Blackout(3.0, 12.0), Flap(12.0, 20.0, period=2.0)],
                clock=clock,
            ),
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.0, clock=clock, sleep=lambda _s: None
            ),
            breaker=CircuitBreaker(
                failure_threshold=2, recovery_seconds=4.0, clock=clock
            ),
        )
        registry.register(
            NullBackend("b"),
            rate=0.5,
            burst=8,
            spill=SpillPolicy.QUEUE,
            queue_max_retries=1,
            queue_max_age_seconds=6.0,
            clock=clock,
        )
        registry.register(NullBackend("c"))
        total_ok = 0
        for _ in range(25):
            report = router.dispatch("app", make_batch(4))
            total_ok += report.executed_ok
            for name in ("a", "b", "c"):
                assert_invariant(registry.get(name))
            clock.advance(1.0)
        assert total_ok > 0
        snap = router.resilience_snapshot()
        assert snap["failovers"] > 0  # the blackout forced hand-offs

"""Unit tests for the labeler adapters and the training module."""

import numpy as np
import pytest

from repro.core.labeler import ClassifierLabeler, ClusterLabeler
from repro.core.labeled_query import LabeledQuery
from repro.core.training import TrainingModule, TrainingSet
from repro.errors import LabelingError, ServiceError
from repro.ml.forest import RandomizedForestClassifier
from repro.ml.kmeans import KMeans


@pytest.fixture()
def xy(rng):
    x = np.vstack([rng.standard_normal((30, 4)) + 4, rng.standard_normal((30, 4)) - 4])
    y = ["hot"] * 30 + ["cold"] * 30
    return x, y


class TestClassifierLabeler:
    def test_fit_predict_arbitrary_labels(self, xy):
        x, y = xy
        labeler = ClassifierLabeler(RandomizedForestClassifier(n_trees=5, seed=0))
        labeler.fit(x, y)
        predictions = labeler.predict(x)
        assert set(predictions) <= {"hot", "cold"}
        assert np.mean([p == t for p, t in zip(predictions, y)]) > 0.9

    def test_predict_before_fit_raises(self):
        labeler = ClassifierLabeler(RandomizedForestClassifier(n_trees=2))
        with pytest.raises(LabelingError):
            labeler.predict(np.zeros((1, 4)))

    def test_empty_fit_raises(self):
        labeler = ClassifierLabeler(RandomizedForestClassifier(n_trees=2))
        with pytest.raises(LabelingError):
            labeler.fit(np.zeros((0, 4)), [])

    def test_predict_proba_and_classes(self, xy):
        x, y = xy
        labeler = ClassifierLabeler(RandomizedForestClassifier(n_trees=5, seed=0))
        labeler.fit(x, y)
        probs = labeler.predict_proba(x[:5])
        assert probs.shape == (5, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert sorted(labeler.classes) == ["cold", "hot"]

    def test_predict_proba_unsupported_estimator(self, xy):
        class Bare:
            def fit(self, x, y):
                return self

            def predict(self, x):
                return np.zeros(len(x), dtype=int)

        x, y = xy
        labeler = ClassifierLabeler(Bare()).fit(x, y)
        with pytest.raises(LabelingError):
            labeler.predict_proba(x)


class TestClusterLabeler:
    def test_labels_are_cluster_ids(self, xy):
        x, _ = xy
        labeler = ClusterLabeler(KMeans(n_clusters=2, seed=0))
        labeler.fit(x)
        labels = labeler.predict(x)
        assert set(labels) <= {0, 1}
        # the two blobs separate
        assert len(set(labels[:30])) == 1
        assert labels[0] != labels[-1]

    def test_predict_before_fit_raises(self, xy):
        x, _ = xy
        with pytest.raises(LabelingError):
            ClusterLabeler(KMeans(n_clusters=2)).predict(x)


class TestTrainingSets:
    def test_labels_column_and_missing_label(self):
        ts = TrainingSet("x")
        ts.append([LabeledQuery.make("q1", user="a"), LabeledQuery.make("q2", user="b")])
        assert ts.labels("user") == ["a", "b"]
        ts.append([LabeledQuery.make("q3")])
        with pytest.raises(ServiceError):
            ts.labels("user")

    def test_training_module_get_or_create(self):
        module = TrainingModule()
        first = module.training_set("app")
        second = module.training_set("app")
        assert first is second
        assert module.set_names() == ["app"]

    def test_train_classifier_on_empty_set_raises(self, fitted_doc2vec):
        module = TrainingModule()
        with pytest.raises(ServiceError):
            module.train_classifier(
                "user", fitted_doc2vec, module.training_set("empty")
            )

    def test_train_without_evaluation(self, fitted_doc2vec, small_corpus):
        module = TrainingModule(n_folds=3)
        ts = module.training_set("app")
        ts.append(
            [
                LabeledQuery.make(q, kind="group" if "GROUP" in q.upper() else "scan")
                for q in small_corpus[:40]
            ]
        )
        classifier, evaluation = module.train_classifier(
            "kind", fitted_doc2vec, ts, evaluate=False
        )
        assert evaluation is None
        assert not module.evaluations
        predictions = classifier.predict(small_corpus[:5])
        assert all(p in ("group", "scan") for p in predictions)

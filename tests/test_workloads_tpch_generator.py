"""Unit tests for the TPC-H workload generator itself."""

import pytest

from repro.errors import WorkloadError
from repro.sql.parser import parse_select
from repro.workloads import generate_tpch_workload
from repro.workloads.tpch import TPCH_TEMPLATE_IDS, tpch_query


class TestGeneration:
    def test_size_and_order(self):
        workload = generate_tpch_workload(instances_per_template=4, seed=1)
        assert len(workload) == 88

    def test_deterministic(self):
        a = generate_tpch_workload(instances_per_template=2, seed=9)
        b = generate_tpch_workload(instances_per_template=2, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_tpch_workload(instances_per_template=2, seed=1)
        b = generate_tpch_workload(instances_per_template=2, seed=2)
        assert a != b

    def test_instances_vary_within_template(self):
        workload = generate_tpch_workload(instances_per_template=5, seed=3)
        q6_instances = workload[5 * 5 : 6 * 5]  # template 6 block
        assert len(set(q6_instances)) > 1

    def test_subset_of_templates(self):
        workload = generate_tpch_workload(2, seed=0, template_ids=(6, 18))
        assert len(workload) == 4
        assert "l_discount" in workload[0]  # Q6
        assert "sum(l_quantity) > " in workload[2]  # Q18

    def test_bad_template_rejected(self):
        with pytest.raises(WorkloadError):
            generate_tpch_workload(1, template_ids=(99,))

    def test_bad_count_rejected(self):
        with pytest.raises(WorkloadError):
            generate_tpch_workload(0)

    @pytest.mark.parametrize("template_id", TPCH_TEMPLATE_IDS)
    def test_every_template_parses(self, template_id):
        parse_select(tpch_query(template_id, seed=4))

    def test_no_interval_arithmetic_left_in_text(self):
        """Date bounds are precomputed to concrete literals, keeping the
        text dialect-neutral (DESIGN.md substitution note)."""
        workload = generate_tpch_workload(instances_per_template=1, seed=0)
        assert not any("interval" in q.lower() for q in workload)

    def test_q18_threshold_inside_configured_band(self):
        from repro.workloads.tpch import Q18_THRESHOLD_RANGE
        import re

        for seed in range(5):
            sql = tpch_query(18, seed=seed)
            threshold = int(re.search(r"> (\d+)\)", sql).group(1))
            assert Q18_THRESHOLD_RANGE[0] <= threshold < Q18_THRESHOLD_RANGE[1]

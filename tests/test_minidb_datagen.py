"""Unit tests for the TPC-H-like data generator's invariants."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.minidb.datagen import generate_tpch_database
from repro.minidb.storage import date_to_days


class TestReferentialIntegrity:
    def test_lineitem_orders_fk(self, tpch_db):
        order_keys = set(tpch_db.table("orders").columns["o_orderkey"].tolist())
        line_keys = set(tpch_db.table("lineitem").columns["l_orderkey"].tolist())
        assert line_keys <= order_keys
        # every order has at least one lineitem (generated per order)
        assert line_keys == order_keys

    def test_orders_customer_fk(self, tpch_db):
        cust_keys = set(tpch_db.table("customer").columns["c_custkey"].tolist())
        order_cust = set(tpch_db.table("orders").columns["o_custkey"].tolist())
        assert order_cust <= cust_keys

    def test_custkey_never_multiple_of_three(self, tpch_db):
        order_cust = tpch_db.table("orders").columns["o_custkey"]
        assert not (order_cust % 3 == 0).any()

    def test_partsupp_fks(self, tpch_db):
        ps = tpch_db.table("partsupp").columns
        parts = set(tpch_db.table("part").columns["p_partkey"].tolist())
        supps = set(tpch_db.table("supplier").columns["s_suppkey"].tolist())
        assert set(ps["ps_partkey"].tolist()) <= parts
        assert set(ps["ps_suppkey"].tolist()) <= supps

    def test_nation_region_mapping(self, tpch_db):
        nations = tpch_db.table("nation").columns
        assert len(nations["n_nationkey"]) == 25
        assert set(nations["n_regionkey"].tolist()) <= set(range(5))


class TestDateInvariants:
    def test_date_ordering_per_line(self, tpch_db):
        li = tpch_db.table("lineitem").columns
        orders = tpch_db.table("orders").columns
        order_date = dict(
            zip(orders["o_orderkey"].tolist(), orders["o_orderdate"].tolist())
        )
        ship = li["l_shipdate"]
        receipt = li["l_receiptdate"]
        assert (receipt > ship).all()
        base = np.array([order_date[k] for k in li["l_orderkey"].tolist()])
        assert (ship > base).all()

    def test_dates_in_spec_window(self, tpch_db):
        dates = tpch_db.table("orders").columns["o_orderdate"]
        assert dates.min() >= date_to_days("1992-01-01")
        assert dates.max() <= date_to_days("1998-08-02")

    def test_returnflag_consistent_with_shipdate(self, tpch_db):
        li = tpch_db.table("lineitem").columns
        cutoff = date_to_days("1995-06-17")
        late = li["l_shipdate"] > cutoff
        assert (li["l_returnflag"][late] == "N").all()
        assert (li["l_linestatus"][late] == "O").all()


class TestScaling:
    def test_virtual_multiplier(self):
        db = generate_tpch_database(exec_scale=0.002, virtual_scale=1.0, seed=0)
        assert db.catalog.virtual_row_multiplier == pytest.approx(500.0)
        scaled = db.catalog.scaled_rows("lineitem")
        assert scaled == db.table("lineitem").n_rows * 500.0

    def test_sizes_scale_linearly(self):
        small = generate_tpch_database(exec_scale=0.002, seed=0)
        large = generate_tpch_database(exec_scale=0.004, seed=0)
        ratio = large.table("orders").n_rows / small.table("orders").n_rows
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_determinism(self):
        a = generate_tpch_database(exec_scale=0.002, seed=3)
        b = generate_tpch_database(exec_scale=0.002, seed=3)
        assert np.array_equal(
            a.table("lineitem").columns["l_quantity"],
            b.table("lineitem").columns["l_quantity"],
        )

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            generate_tpch_database(exec_scale=0.0)

    def test_q18_threshold_band_selectivity(self, tpch_db):
        """The Figure 4 knob: a few percent of orders exceed the Q18
        thresholds — far more than the optimizer's 0.1% guess."""
        li = tpch_db.table("lineitem").columns
        sums = {}
        for k, q in zip(li["l_orderkey"].tolist(), li["l_quantity"].tolist()):
            sums[k] = sums.get(k, 0.0) + q
        totals = np.array(list(sums.values()))
        from repro.workloads.tpch import Q18_THRESHOLD_RANGE

        lo_sel = (totals > Q18_THRESHOLD_RANGE[1]).mean()
        hi_sel = (totals > Q18_THRESHOLD_RANGE[0]).mean()
        assert 0.01 < lo_sel < hi_sel < 0.30
"""Unit tests for embedder save/load."""

import numpy as np
import pytest

from repro.embedding import (
    BagOfTokensEmbedder,
    Doc2VecEmbedder,
    LSTMAutoencoderEmbedder,
    load_embedder,
    save_embedder,
)
from repro.errors import EmbeddingError


class TestRoundtrip:
    def test_doc2vec_roundtrip(self, fitted_doc2vec, small_corpus, tmp_path):
        path = save_embedder(fitted_doc2vec, tmp_path / "d2v")
        restored = load_embedder(path)
        original = fitted_doc2vec.transform(small_corpus[:5])
        reloaded = restored.transform(small_corpus[:5])
        assert np.allclose(original, reloaded)

    def test_lstm_roundtrip(self, fitted_lstm, small_corpus, tmp_path):
        path = save_embedder(fitted_lstm, tmp_path / "lstm")
        restored = load_embedder(path)
        original = fitted_lstm.transform(small_corpus[:5])
        reloaded = restored.transform(small_corpus[:5])
        assert np.allclose(original, reloaded)
        assert restored.loss_history == fitted_lstm.loss_history

    def test_bow_roundtrip(self, small_corpus, tmp_path):
        embedder = BagOfTokensEmbedder(dimension=12).fit(small_corpus)
        path = save_embedder(embedder, tmp_path / "bow")
        restored = load_embedder(path)
        assert np.allclose(
            embedder.transform(small_corpus[:5]),
            restored.transform(small_corpus[:5]),
        )

    def test_suffix_appended(self, fitted_doc2vec, tmp_path):
        path = save_embedder(fitted_doc2vec, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_restored_model_handles_unseen_queries(
        self, fitted_lstm, tmp_path
    ):
        path = save_embedder(fitted_lstm, tmp_path / "m")
        restored = load_embedder(path)
        out = restored.transform(["SELECT brand_new FROM never_seen"])
        assert np.isfinite(out).all()


class TestErrors:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(EmbeddingError):
            save_embedder(Doc2VecEmbedder(dimension=4), tmp_path / "x")

    def test_garbage_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, junk=np.zeros(3))
        with pytest.raises(EmbeddingError):
            load_embedder(bad)

    def test_unknown_embedder_type_rejected(self, tmp_path, small_corpus):
        class Custom(LSTMAutoencoderEmbedder):
            pass

        # subclasses of known types still serialize; a truly foreign
        # object does not
        class Foreign:
            is_fitted = True

        with pytest.raises(EmbeddingError):
            save_embedder(Foreign(), tmp_path / "f")

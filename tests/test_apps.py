"""Tests for the §4 applications over the public API."""

from collections import defaultdict

import numpy as np
import pytest

from repro.apps.errorpred import ErrorPredictor
from repro.apps.recommendation import QueryRecommender
from repro.apps.resources import ResourceAllocator, resource_class
from repro.apps.routing import RoutingPolicyAuditor
from repro.apps.security import SecurityAuditor
from repro.apps.summarization import (
    KMedoidsBaselineSummarizer,
    WorkloadSummarizer,
)
from repro.errors import LabelingError
from repro.workloads.logs import QueryLogRecord


class TestSummarization:
    def test_summary_is_subset_with_k_clusters(self, fitted_doc2vec, tpch_workload):
        summarizer = WorkloadSummarizer(fitted_doc2vec, k=6, seed=0)
        summary = summarizer.summarize(tpch_workload)
        assert set(summary.queries) <= set(tpch_workload)
        assert 1 <= len(summary.queries) <= 6
        assert summary.k == 6

    def test_elbow_autoselects_k(self, fitted_doc2vec, tpch_workload):
        summarizer = WorkloadSummarizer(fitted_doc2vec, k_range=(2, 12), seed=0)
        summary = summarizer.summarize(tpch_workload)
        assert 2 <= summary.k <= 12
        assert summary.inertia_curve  # curve recorded

    def test_indices_point_at_queries(self, fitted_doc2vec, tpch_workload):
        summary = WorkloadSummarizer(fitted_doc2vec, k=5, seed=0).summarize(
            tpch_workload
        )
        for idx, query in zip(summary.indices, summary.queries):
            assert tpch_workload[idx] == query

    def test_empty_workload_raises(self, fitted_doc2vec):
        with pytest.raises(LabelingError):
            WorkloadSummarizer(fitted_doc2vec, k=2).summarize([])

    def test_kmedoids_baseline(self, tpch_workload):
        summary = KMedoidsBaselineSummarizer(k=5, seed=0).summarize(tpch_workload)
        assert set(summary.queries) <= set(tpch_workload)
        assert len(summary.queries) <= 5


@pytest.fixture(scope="module")
def auditor_setup(fitted_doc2vec, snowsim_records):
    # use a mid-sized exclusive account for trainable user signal
    train = snowsim_records[:800]
    test = snowsim_records[800:1000]
    auditor = SecurityAuditor(fitted_doc2vec, n_trees=8, seed=0).fit(train)
    return auditor, train, test


class TestSecurity:
    def test_account_prediction_beats_chance(self, auditor_setup):
        auditor, _, test = auditor_setup
        predictions = auditor.predict_account([r.query for r in test])
        accuracy = np.mean([p == r.account for p, r in zip(predictions, test)])
        n_accounts = len({r.account for r in test})
        assert accuracy > 2.0 / n_accounts

    def test_cross_validate_returns_fold_scores(self, auditor_setup):
        auditor, train, _ = auditor_setup
        scores = auditor.cross_validate(train[:300], "account", n_folds=3)
        assert len(scores) == 3
        assert all(0 <= s <= 1 for s in scores)

    def test_audit_flags_are_mismatches(self, auditor_setup):
        auditor, _, test = auditor_setup
        findings = auditor.audit(test, min_confidence=0.0)
        for finding in findings:
            assert finding.predicted_user != finding.claimed_user

    def test_audit_before_fit_raises(self, fitted_doc2vec):
        with pytest.raises(LabelingError):
            SecurityAuditor(fitted_doc2vec).audit([])

    def test_bad_label_rejected(self, auditor_setup):
        auditor, train, _ = auditor_setup
        with pytest.raises(LabelingError):
            auditor.cross_validate(train, "salary")


class TestRouting:
    def test_finds_injected_misroutes(self, fitted_doc2vec, snowsim_records):
        train = snowsim_records[:800]
        auditor = RoutingPolicyAuditor(fitted_doc2vec, n_trees=8, seed=0).fit(train)
        # build a clean home map, then inject misroutes
        home = defaultdict(lambda: defaultdict(int))
        for r in train:
            home[r.account][r.cluster] += 1
        home_of = {a: max(c, key=c.get) for a, c in home.items()}
        clean = [
            QueryLogRecord(query=r.query, account=r.account, cluster=home_of[r.account])
            for r in snowsim_records[800:900]
        ]
        wrong = [
            QueryLogRecord(query=r.query, account=r.account, cluster="cluster_mars")
            for r in snowsim_records[900:950]
        ]
        clean_flags = auditor.find_misroutes(clean, min_confidence=0.6)
        wrong_flags = auditor.find_misroutes(wrong, min_confidence=0.6)
        assert len(wrong_flags) / len(wrong) > len(clean_flags) / len(clean)


class TestErrorsAndResources:
    def test_error_predictor_scores_errors_riskier(self, fitted_doc2vec):
        from repro.workloads import SnowSimConfig, generate_snowsim_workload

        # a corpus with enough errors for the signal to be learnable
        records = generate_snowsim_workload(
            SnowSimConfig(total_queries=2000, seed=17, error_rate=0.15)
        )
        train = records[:1500]
        test = records[1500:]
        predictor = ErrorPredictor(fitted_doc2vec, n_trees=12, seed=0).fit(train)
        predictions = predictor.predict([r.query for r in test])
        assert len(predictions) == len(test)
        scores = predictor.risk_scores([r.query for r in test])
        assert ((scores >= 0) & (scores <= 1)).all()
        err_scores = [s for s, r in zip(scores, test) if r.error_code == "OOM"]
        ok_scores = [s for s, r in zip(scores, test) if not r.error_code]
        assert len(err_scores) >= 10
        assert np.mean(err_scores) > np.mean(ok_scores)

    def test_resource_class_buckets(self):
        assert resource_class(0.1, 10) == "light"
        assert resource_class(1.0, 10) == "standard"
        assert resource_class(10.0, 10) == "long-running"
        assert resource_class(10.0, 999) == "memory-intensive"

    def test_allocator_beats_majority_class(self, fitted_doc2vec, snowsim_records):
        train = snowsim_records[:900]
        test = snowsim_records[900:1200]
        allocator = ResourceAllocator(fitted_doc2vec, n_trees=10, seed=0).fit(train)
        accuracy = allocator.accuracy(test)
        truth = [resource_class(r.runtime_seconds, r.memory_mb) for r in test]
        majority = max(truth.count(c) for c in set(truth)) / len(truth)
        assert accuracy >= majority - 0.05


class TestRecommendation:
    def test_recommends_from_neighbours(self, fitted_doc2vec, snowsim_records):
        sessions = defaultdict(list)
        for r in snowsim_records:
            sessions[r.user].append(r.query)
        usable = [qs for qs in sessions.values() if len(qs) >= 5][:20]
        recommender = QueryRecommender(fitted_doc2vec, history=2, n_neighbors=4)
        recommender.fit(usable)
        suggestions = recommender.recommend(usable[0][:3], top_k=3)
        assert 1 <= len(suggestions) <= 3
        assert all(isinstance(s, str) and s for s in suggestions)

    def test_too_short_sessions_raise(self, fitted_doc2vec):
        with pytest.raises(LabelingError):
            QueryRecommender(fitted_doc2vec).fit([["only one"]])

    def test_empty_history_raises(self, fitted_doc2vec, snowsim_records):
        sessions = [[r.query for r in snowsim_records[:6]]]
        rec = QueryRecommender(fitted_doc2vec, history=2).fit(sessions)
        with pytest.raises(LabelingError):
            rec.recommend([])

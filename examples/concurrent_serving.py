"""Concurrent staged serving: the Qworker fan-out with tuned batches.

Two tenants (X on SnowSim logs, Y on a TPC-H stream) share one
service. Their interleaved streams are re-chunked live by a
``BatchSizeTuner`` (sizes adapt to each tenant's measured labeling
cost) and flow through ``process_routed_concurrent``: one lane per
application, the embed/predict stage of batch *n+1* overlapped with
the route/execute stage of batch *n*. The backends sit behind a
``LatencyProxyBackend`` simulating a remote database — the wall time
the staged executor reclaims.

Run:  PYTHONPATH=src python examples/concurrent_serving.py
"""

import time

from repro import MiniDBBackend, QuercService
from repro.apps.routing import RoutingPolicyAuditor
from repro.backends import LatencyProxyBackend
from repro.embedding import BagOfTokensEmbedder
from repro.minidb import materialize_log_tables
from repro.runtime import BatchSizeTuner
from repro.workloads import (
    QueryLogRecord,
    QueryStream,
    SnowSimConfig,
    generate_snowsim_workload,
    generate_tpch_workload,
    interleave_streams,
    rebatch_streams,
)


def main() -> None:
    snow = generate_snowsim_workload(SnowSimConfig(total_queries=1200, seed=9))
    train, serve = snow[:800], snow[800:]
    tpch = [
        QueryLogRecord(query=q)
        for q in generate_tpch_workload(instances_per_template=19, seed=3)[:400]
    ]

    database = materialize_log_tables(
        [r.query for r in snow] + [r.query for r in tpch], rows_per_table=32
    )

    embedder = BagOfTokensEmbedder(dimension=64).fit([r.query for r in train])
    auditor = RoutingPolicyAuditor(embedder, n_trees=16, seed=0).fit(train)

    service = QuercService()
    for name in ("DB(X)", "DB(Y)"):
        # a remote database: every execute pays a simulated round-trip
        service.register_backend(
            LatencyProxyBackend(
                MiniDBBackend(name, database),
                per_batch_seconds=0.005,
                per_query_seconds=0.002,
            )
        )
    service.add_application("X", backend="DB(X)")
    service.add_application("Y", backend="DB(Y)")
    service.attach_classifier("X", auditor.to_classifier("cluster"))

    # the tuner targets 25ms of labeling per batch; the staged executor
    # feeds it per-batch observations, the stream layer asks it for sizes
    tuner = service.set_batch_tuner(
        BatchSizeTuner(initial=32, min_size=8, max_size=256, target_seconds=0.025)
    )

    streams = [
        QueryStream("X", serve, batch_size=32),
        QueryStream("Y", tpch, batch_size=32),
    ]
    # hand the generator straight through: the lanes consume it under
    # backpressure, so the tuner's observations from early batches
    # re-size the later ones while the stream is still flowing
    batches = rebatch_streams(interleave_streams(streams), tuner)

    start = time.perf_counter()
    results = service.process_routed_concurrent(batches)
    wall = time.perf_counter() - start

    queries = sum(len(labeled) for labeled, _ in results)
    print(f"{queries} queries in {len(results)} batches: {wall:.2f}s "
          f"({queries / wall:.0f} q/s)")

    stats = service.stats()
    for app, lane in stats["executor"]["lanes"].items():
        print(
            f"lane {app}: {lane['labeled_batches']} batches, "
            f"label {lane['label_seconds']:.2f}s, "
            f"dispatch {lane['dispatch_seconds']:.2f}s"
        )
    print(f"overlap: {stats['executor']['overlap']:.2f} "
          "(lane-busy seconds / wall seconds; >1 means stages ran concurrently)")
    for app, lane in stats["tuner"]["applications"].items():
        print(
            f"tuner {app}: batch size {lane['size']} "
            f"({lane['per_query_ewma_seconds'] * 1e6:.0f}us/query observed)"
        )


if __name__ == "__main__":
    main()

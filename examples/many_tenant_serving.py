"""Many-tenant serving: 24 applications on a 12-thread stage pool.

The paper's Figure 1 draws *many* Qworkers side by side. This example
serves 24 tenant applications over 2 simulated-remote databases with
``process_routed_concurrent``'s shared stage pool: 4 label workers
(embed/predict) and 8 dispatch workers (route/execute) handle every
tenant, instead of the 48 threads a two-threads-per-application design
would burn. Each tenant keeps its own lane — a lightweight queue
record that preserves per-tenant FIFO order — so labels and backend
outcomes are exactly what the serial loop would produce; only the
waiting overlaps.

Run:  PYTHONPATH=src python examples/many_tenant_serving.py
"""

import threading
import time

from repro import MiniDBBackend, QuercService
from repro.apps.routing import RoutingPolicyAuditor
from repro.backends import LatencyProxyBackend
from repro.embedding import BagOfTokensEmbedder
from repro.minidb import materialize_log_tables
from repro.workloads import (
    QueryStream,
    SnowSimConfig,
    generate_snowsim_workload,
    interleave_streams,
)

N_TENANTS = 24
LABEL_WORKERS = 4
DISPATCH_WORKERS = 8


def main() -> None:
    records = generate_snowsim_workload(SnowSimConfig(total_queries=1600, seed=9))
    train, serve = records[:400], records[400:]

    database = materialize_log_tables([r.query for r in records], rows_per_table=16)
    embedder = BagOfTokensEmbedder(dimension=48).fit([r.query for r in train])
    auditor = RoutingPolicyAuditor(embedder, n_trees=8, seed=0).fit(train)
    classifier = auditor.to_classifier("cluster")

    service = QuercService()
    for name in ("DB(east)", "DB(west)"):
        # a remote database: every execute pays a simulated round-trip
        service.register_backend(
            LatencyProxyBackend(
                MiniDBBackend(name, database),
                per_batch_seconds=0.004,
                per_query_seconds=0.001,
            )
        )

    # 24 tenants, alternately homed on the two databases, all sharing
    # one embedder and one deployed classifier
    tenants = [f"tenant-{i:02d}" for i in range(N_TENANTS)]
    for i, name in enumerate(tenants):
        service.add_application(
            name, backend="DB(east)" if i % 2 == 0 else "DB(west)"
        )
        service.attach_classifier(name, classifier)

    # skewed per-tenant streams: a few heavy tenants, many light ones
    streams, cursor = [], 0
    for i, name in enumerate(tenants):
        n = 96 if i % 6 == 0 else 32
        streams.append(
            QueryStream(name, serve[cursor : cursor + n], batch_size=16)
        )
        cursor += n
    batches = list(interleave_streams(streams))

    start = time.perf_counter()
    results = service.process_routed_concurrent(
        batches,
        label_workers=LABEL_WORKERS,
        dispatch_workers=DISPATCH_WORKERS,
    )
    wall = time.perf_counter() - start

    queries = sum(len(labeled) for labeled, _ in results)
    print(
        f"{queries} queries from {N_TENANTS} tenants in {len(results)} "
        f"batches: {wall:.2f}s ({queries / wall:.0f} q/s)"
    )

    executor = service.stats()["executor"]
    pool = executor["pool"]
    print(
        f"threads: {pool['threads']} pool workers "
        f"({pool['label_workers']} label + {pool['dispatch_workers']} dispatch) "
        f"for {executor['tenants']} tenants — a per-tenant design would "
        f"need {2 * N_TENANTS}"
    )
    print(
        f"peak occupancy: label {pool['max_label_active']}/"
        f"{pool['label_workers']}, dispatch {pool['max_dispatch_active']}/"
        f"{pool['dispatch_workers']}"
    )
    print(
        f"overlap: {executor['overlap']:.2f} "
        "(lane-busy seconds / wall seconds; >1 means tenants ran concurrently)"
    )
    heavy = executor["lanes"][tenants[0]]
    light = executor["lanes"][tenants[1]]
    print(
        f"lanes: {tenants[0]} labeled {heavy['labeled_batches']} batches, "
        f"{tenants[1]} labeled {light['labeled_batches']} — every lane a "
        "queue record, not a thread pair"
    )
    # the pool is gone once the call returns; nothing lingers per tenant
    leftover = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(("querc-label-", "querc-dispatch-"))
    ]
    print(f"worker threads after the call returned: {leftover or 'none'}")


if __name__ == "__main__":
    main()

"""Load-aware routing: placement follows backend feedback, not labels.

One application, two backends: ``DB(alpha)`` is a slow remote engine
(2ms per query behind a latency proxy), ``DB(beta)`` a fast one. The
static route table pins 80% of the predicted label space to the slow
backend — the paper's fixed label→DB(X) arrow. A
``LatencyEwmaPolicy`` then re-ranks both candidates per batch on their
observed per-query latency, drains the hot labels onto the fast
backend, and the p95 per-batch latency drops while the labels stay
byte-identical. ``stats()["routing"]`` shows the policy's decisions
and each backend's live load signal.

``LeastLoadedPolicy`` is shown for contrast: it ranks on in-flight +
queued depth, which only differentiates while work is actually in
flight (the staged executor's overlapped dispatch, admission-gated
backends). In this serial loop every gate is idle at rank time, so the
depths tie and the name order decides — depth policies want live
concurrency; latency policies work anywhere.

Run:  PYTHONPATH=src python examples/load_aware_routing.py
"""

import time

from repro import QuercService
from repro.backends import (
    LatencyEwmaPolicy,
    LatencyProxyBackend,
    LeastLoadedPolicy,
    NullBackend,
)
from repro.core import QueryClassifier
from repro.core.labeler import ClassifierLabeler
from repro.embedding import BagOfTokensEmbedder
from repro.ml.forest import RandomizedForestClassifier
from repro.sql.normalizer import template_fingerprint
from repro.workloads import (
    QueryLogRecord,
    QueryStream,
    SnowSimConfig,
    generate_snowsim_workload,
)

N_LABELS = 5  # predicted cluster 0..4; 0-3 statically pin the slow backend


def train_classifier(queries):
    """Deterministic route-label model (cluster = f(fingerprint))."""
    embedder = BagOfTokensEmbedder(dimension=48, min_count=1, seed=7).fit(queries)
    labels = [int(template_fingerprint(q)[:8], 16) % N_LABELS for q in queries]
    labeler = ClassifierLabeler(
        RandomizedForestClassifier(n_trees=32, max_depth=10, seed=1)
    )
    labeler.fit(embedder.transform(queries), labels)
    return QueryClassifier("cluster", embedder, labeler, embedder_name="bow-route")


def build_service(classifier, policy=None):
    service = QuercService()
    for name, per_query in (("DB(alpha)", 0.002), ("DB(beta)", 0.0002)):
        service.register_backend(
            LatencyProxyBackend(
                NullBackend(f"{name}-engine"),
                per_batch_seconds=0.002,
                per_query_seconds=per_query,
                name=name,
            )
        )
    service.add_application("X", backend="DB(alpha)")
    service.attach_classifier("X", classifier)
    for label in range(N_LABELS - 1):
        service.map_route(label, "DB(alpha)")  # the skewed static table
    service.map_route(N_LABELS - 1, "DB(beta)")
    if policy is not None:
        service.set_routing_policy(policy)
    return service


def run(service, batches):
    timings = []
    for batch in batches:
        start = time.perf_counter()
        service.process_routed(batch)
        timings.append(time.perf_counter() - start)
    return timings


def p95(timings):
    ordered = sorted(timings)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def main() -> None:
    records = generate_snowsim_workload(SnowSimConfig(total_queries=700, seed=17))
    classifier = train_classifier([r.query for r in records[:200]])
    serve = [QueryLogRecord(query=r.query) for r in records[200:]]
    batches = list(QueryStream("X", serve, batch_size=16).batches())

    for title, policy in (
        ("static label map", None),
        ("latency-EWMA policy", LatencyEwmaPolicy()),
        ("least-loaded policy", LeastLoadedPolicy()),
    ):
        service = build_service(classifier, policy=policy)
        timings = run(service, batches)
        stats = service.stats()
        service.close()  # release the fan-out pool between runs
        placed = {
            name: backend["dispatched"]
            for name, backend in stats["backends"].items()
        }
        print(f"{title:<22} p95 {p95(timings) * 1e3:6.1f}ms   placed {placed}")
        routing = stats["routing"]
        if routing["policy"]["name"] != "static":
            signals = {
                name: (
                    f"{signal['latency_ewma_seconds'] * 1e3:.2f}ms/q"
                    if signal["latency_ewma_seconds"] is not None
                    else "unmeasured"
                )
                for name, signal in sorted(routing["signals"].items())
            }
            print(
                f"{'':<22} reranks {routing['reranks']}, "
                f"static fallbacks {routing['static_fallbacks']}, "
                f"signals {signals}"
            )


if __name__ == "__main__":
    main()

"""Routing-policy enforcement: detect misconfigured query routing (§4).

SnowSim routes each account to a home cluster but misroutes ~1% of
queries. The auditor learns the (implicit) policy from logs and flags
assignments that contradict it — without anyone writing the policy
down, which is the paper's point.

Run:  python examples/routing_audit.py
"""

from repro.apps.routing import RoutingPolicyAuditor
from repro.embedding import Doc2VecEmbedder
from repro.workloads import SnowSimConfig, generate_snowsim_workload


def main() -> None:
    records = generate_snowsim_workload(
        SnowSimConfig(total_queries=3000, seed=9, misroute_rate=0.02)
    )
    train, audit = records[:2000], records[2000:]

    embedder = Doc2VecEmbedder(dimension=32, epochs=6, seed=0)
    embedder.fit([r.query for r in train])
    auditor = RoutingPolicyAuditor(embedder, n_trees=16, seed=0).fit(train)

    findings = auditor.find_misroutes(audit, min_confidence=0.7)

    # ground truth: a record is truly misrouted when its assigned
    # cluster differs from its account's home cluster (majority vote)
    home: dict[str, dict[str, int]] = {}
    for record in train:
        home.setdefault(record.account, {}).setdefault(record.cluster, 0)
        home[record.account][record.cluster] += 1
    home_cluster = {a: max(c, key=c.get) for a, c in home.items()}
    truly_misrouted = {
        id(r) for r in audit if r.cluster != home_cluster.get(r.account)
    }

    hits = sum(
        1
        for f in findings
        for r in audit
        if r.query == f.query and id(r) in truly_misrouted
    )
    print(f"audited {len(audit)} queries")
    print(f"true misroutes: {len(truly_misrouted)}")
    print(f"flagged: {len(findings)}, of which true misroutes: {hits}")
    for finding in findings[:3]:
        print(
            f"  {finding.assigned_cluster} -> predicted "
            f"{finding.predicted_cluster} (conf {finding.confidence:.2f})"
        )


if __name__ == "__main__":
    main()

"""Workload summarization for index selection (the paper's §5.1).

Generates a TPC-H workload against the bundled engine, summarizes it
with an LSTM-autoencoder embedder + K-means (elbow method), runs the
time-budgeted index advisor on both the full and the summarized
workload, and compares the resulting whole-workload runtimes.

Run:  python examples/index_selection.py
"""

from repro.apps.summarization import WorkloadSummarizer
from repro.embedding import LSTMAutoencoderEmbedder
from repro.experiments.config import SECONDS_PER_COST_UNIT
from repro.minidb import IndexAdvisor, IndexConfig, generate_tpch_database
from repro.workloads import generate_tpch_workload

BUDGET_MINUTES = 3.0
PAPER_SIZE_MULTIPLIER = 38 / 3  # simulate the paper's 38-instance workload


def workload_runtime(db, workload, config) -> float:
    units = sum(db.execute(sql, config).actual_cost for sql in workload)
    return units * SECONDS_PER_COST_UNIT * PAPER_SIZE_MULTIPLIER


def main() -> None:
    db = generate_tpch_database(exec_scale=0.01, virtual_scale=1.0, seed=42)
    workload = generate_tpch_workload(instances_per_template=3, seed=7)
    print(f"TPC-H workload: {len(workload)} query instances")

    no_index = workload_runtime(db, workload, IndexConfig())
    print(f"runtime without indexes:        {no_index:7.1f} s")

    advisor = IndexAdvisor(db)
    budget = BUDGET_MINUTES * 60.0

    # full workload: the advisor runs out of budget mid-search
    report_full = advisor.recommend(
        workload, budget, billing_multiplier=PAPER_SIZE_MULTIPLIER
    )
    full_runtime = workload_runtime(db, workload, report_full.config)
    print(
        f"runtime, full-workload tuning:  {full_runtime:7.1f} s "
        f"(config: {report_full.config.fingerprint()})"
    )

    # summarized workload: embed, cluster, keep one witness per cluster
    embedder = LSTMAutoencoderEmbedder(dimension=32, epochs=5, seed=1)
    embedder.fit(workload)
    summary = WorkloadSummarizer(embedder, k_range=(4, 20), seed=0).summarize(
        workload
    )
    print(f"summary: {len(summary.queries)} witnesses (K={summary.k})")

    report_summary = advisor.recommend(list(summary.queries), budget)
    summary_runtime = workload_runtime(db, workload, report_summary.config)
    print(
        f"runtime, summarized tuning:     {summary_runtime:7.1f} s "
        f"(config: {report_summary.config.fingerprint()})"
    )

    print(
        "\nsummarized tuning found indexes the full workload could not "
        "afford to evaluate within the same budget"
        if summary_runtime < full_runtime
        else "\n(budget was generous enough for the full workload here)"
    )


if __name__ == "__main__":
    main()

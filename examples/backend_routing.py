"""Prediction-driven dispatch: labeled batches land on real databases.

The paper's Figure 1 ends with the ``query(X, t)`` arrows hitting
``DB(X)``, ``DB(Y)``, ``DB(Z)``. This example closes that loop: a
routing model learned from logs predicts each query's cluster, the
router maps predicted clusters to registered MiniDB backends, one
backend runs behind a tight admission gate (bounded in-flight work),
and the per-backend counters — dispatched / admitted / rejected /
executed, per-backend latency — come back through ``stats()``.

Run:  PYTHONPATH=src python examples/backend_routing.py
"""

from repro import MiniDBBackend, QuercService
from repro.apps.routing import RoutingPolicyAuditor
from repro.embedding import BagOfTokensEmbedder
from repro.minidb import materialize_log_tables
from repro.workloads import QueryStream, SnowSimConfig, generate_snowsim_workload


def main() -> None:
    records = generate_snowsim_workload(SnowSimConfig(total_queries=2400, seed=9))
    train, serve = records[:1600], records[1600:]

    # a database whose schema satisfies the log, so routed queries
    # actually execute instead of stopping at labels
    database = materialize_log_tables([r.query for r in records], rows_per_table=96)

    embedder = BagOfTokensEmbedder(dimension=64).fit([r.query for r in train])
    auditor = RoutingPolicyAuditor(embedder, n_trees=16, seed=0).fit(train)

    service = QuercService()
    service.register_backend(
        MiniDBBackend("DB(small)", database), max_in_flight=8
    )
    service.register_backend(MiniDBBackend("DB(large)", database))
    service.map_route("cluster_us_east", "DB(small)")
    service.map_route("cluster_us_west", "DB(small)")
    service.map_route("cluster_eu", "DB(large)")
    service.map_route("cluster_ap", "DB(large)")
    service.add_application("X", backend="DB(large)")
    service.attach_classifier("X", auditor.to_classifier("cluster"))

    for batch in QueryStream("X", serve, batch_size=64).batches():
        labeled, report = service.process_routed(batch)
        if batch.time_step < 3 and report is not None:
            print(
                f"t={batch.time_step}: {report.offered} offered, "
                f"{report.admitted} admitted, {report.rejected} rejected, "
                f"{report.executed_ok} executed ok"
            )

    stats = service.stats()
    print()
    for name, counters in stats["backends"].items():
        print(
            f"{name}: dispatched={counters['dispatched']} "
            f"admitted={counters['admitted']} rejected={counters['rejected']} "
            f"executed_ok={counters['executed_ok']} failed={counters['failed']} "
            f"rows={counters['rows_returned']} "
            f"mean_query={counters['mean_query_seconds'] * 1e3:.2f}ms"
        )
    stages = stats["runtime"]["stage_seconds"]
    print(
        f"\nstage seconds: route={stages['route']:.4f} "
        f"execute={stages['execute']:.4f} embed={stages['embed']:.4f}"
    )


if __name__ == "__main__":
    main()

"""Fault-tolerant serving: the primary dies, the stream doesn't notice.

Same prediction-driven dispatch as ``backend_routing.py``, but the
primary database now sits behind a :class:`FaultInjectingBackend`
running a scripted outage — a hard blackout followed by a flapping
link, all on a logical clock that ticks once per batch. The binding is
registered with a :class:`RetryPolicy` (transient bursts get
re-executed), a :class:`CircuitBreaker` (repeated failures stop being
offered work until a recovery probe succeeds), and the healthy
``standby`` as its failover candidate.

The outcome to look for: **zero batches raise**. During the blackout
the breaker opens after two failed batches and everything short-
circuits to the standby without touching the dead primary; once the
schedule heals, a half-open probe closes the breaker and traffic
returns. ``stats()["resilience"]`` shows the whole story — retries,
failovers, breaker transitions — and the per-backend counters keep
their invariant (dispatched == admitted + rejected + queued + spilled
+ queue_evicted) through all of it.

Run:  PYTHONPATH=src python examples/fault_tolerant_serving.py
"""

from repro import MiniDBBackend, QuercService
from repro.apps.routing import RoutingPolicyAuditor
from repro.backends import (
    Blackout,
    CircuitBreaker,
    FaultInjectingBackend,
    Flap,
    RetryPolicy,
)
from repro.embedding import BagOfTokensEmbedder
from repro.minidb import materialize_log_tables
from repro.workloads import QueryStream, SnowSimConfig, generate_snowsim_workload

BLACKOUT = (4.0, 16.0)  # primary dead for batches t=4..15
FLAP = (16.0, 26.0, 2.0)  # then down/up alternating one-batch phases


class LogicalClock:
    """Batch index as time — the chaos schedule is deterministic."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def main() -> None:
    records = generate_snowsim_workload(SnowSimConfig(total_queries=2400, seed=9))
    train, serve = records[:1600], records[1600:]
    database = materialize_log_tables([r.query for r in records], rows_per_table=96)

    embedder = BagOfTokensEmbedder(dimension=64).fit([r.query for r in train])
    auditor = RoutingPolicyAuditor(embedder, n_trees=16, seed=0).fit(train)

    clock = LogicalClock()
    service = QuercService()
    service.register_backend(
        FaultInjectingBackend(
            MiniDBBackend("primary", database),
            [Blackout(*BLACKOUT), Flap(*FLAP)],
            clock=clock,
        ),
        fallback="standby",
        retry=RetryPolicy(
            max_attempts=2,
            base_delay=0.0,
            clock=clock,
            sleep=lambda _s: None,  # logical time only — no real sleeps
        ),
        breaker=CircuitBreaker(
            failure_threshold=2, recovery_seconds=3.0, clock=clock
        ),
    )
    service.register_backend(MiniDBBackend("standby", database))
    for cluster in ("cluster_us_east", "cluster_us_west", "cluster_eu", "cluster_ap"):
        service.map_route(cluster, "primary")
    service.add_application("X", backend="primary")
    service.attach_classifier("X", auditor.to_classifier("cluster"))

    raised = executed = 0
    for batch in QueryStream("X", serve, batch_size=32).batches():
        clock.now = float(batch.time_step)
        try:
            _, report = service.process_routed(batch)
        except Exception as exc:  # noqa: BLE001 - would mean resilience failed
            raised += 1
            print(f"t={batch.time_step}: RAISED {exc!r}")
            continue
        executed += report.executed_ok
        if batch.time_step in (3, 4, 5, 16, 26):
            placed: dict[str, int] = {}
            for d in report.decisions:
                placed[d.backend] = placed.get(d.backend, 0) + d.admitted
            print(
                f"t={batch.time_step:>2}: executed_ok={report.executed_ok:>2} "
                f"admitted {placed}"
            )

    stats = service.stats()
    service.close()
    res = stats["resilience"]
    print(
        f"\nbatches raised: {raised}   queries executed ok: {executed}\n"
        f"retries {res['retries']}, failovers {res['failovers']}, "
        f"queue evictions {res['queue_evicted']}"
    )
    breaker = res["backends"]["primary"]["breaker"]
    print(
        f"primary breaker: state={breaker['state']} opens={breaker['opens']} "
        f"half_opens={breaker['half_opens']} closes={breaker['closes']}"
    )
    for name, counters in sorted(stats["backends"].items()):
        print(
            f"{name}: dispatched={counters['dispatched']} "
            f"admitted={counters['admitted']} spilled={counters['spilled']} "
            f"executed_ok={counters['executed_ok']} failed={counters['failed']}"
        )


if __name__ == "__main__":
    main()

"""Quickstart: stand up a Querc service end to end.

Builds a small multi-tenant workload, trains a shared embedder, wires
two applications into a QuercService (one shared embedder, Figure 1
style), imports logs, trains + deploys an account classifier, and
labels a live query stream.

Run:  python examples/quickstart.py
"""

from repro import Doc2VecEmbedder, QuercService
from repro.workloads import (
    QueryStream,
    SnowSimConfig,
    generate_snowsim_workload,
)


def main() -> None:
    # 1. a workload: SnowSim generates labeled multi-tenant query logs
    records = generate_snowsim_workload(
        SnowSimConfig(total_queries=1500, seed=3)
    )
    print(f"generated {len(records)} log records "
          f"({len({r.account for r in records})} accounts)")

    # 2. train a shared embedder on the raw query text (no labels needed)
    embedder = Doc2VecEmbedder(dimension=32, epochs=6, seed=0)
    embedder.fit([r.query for r in records])
    print(f"trained Doc2Vec embedder: {embedder.dimension}-dim vectors")

    # 3. wire up the service: two applications sharing one embedder
    service = QuercService(n_folds=5, seed=0)
    service.embedders.register("EmbedderA(X,Y)", embedder, trained_on=("X", "Y"))
    service.add_application("X")
    service.add_application("Y")

    # 4. import ground-truth logs and train a classifier for app X
    split = len(records) // 2
    service.import_logs("X", records[:split])
    deployed = service.train_and_deploy(
        "X", label_name="account", embedder_name="EmbedderA(X,Y)"
    )
    evaluation = service.training.evaluations[-1]
    print(
        f"deployed {deployed.label_name!r} v{deployed.version} "
        f"(CV accuracy {evaluation.mean_accuracy:.1%})"
    )

    # 5. process a live stream: every batch comes back labeled
    stream = QueryStream("X", records[split : split + 64], batch_size=16)
    correct = 0
    total = 0
    for batch in stream.batches():
        labeled = service.process(batch)
        for message, record in zip(labeled, batch.records):
            total += 1
            if message.label("account") == record.account:
                correct += 1
    print(f"live stream labeling: {correct}/{total} accounts correct")


if __name__ == "__main__":
    main()

"""Predictive provisioning: the pool follows the forecast, not the lag.

Two applications share one staged deployment on a fixed thread
budget. ``X`` ramps from a trickle to a flood while ``Y`` ticks along
steadily. A :class:`PredictiveProvisioner` rides the dispatch-feedback
path: per-tenant arrival-rate forecasters (Holt level+trend on fixed
clock buckets) feed a :class:`ProvisioningPlanner`, which re-splits
the same thread budget between the label and dispatch stages, re-rates
the admission gates, and publishes every decision as an auditable
blueprint diff in ``stats()["forecast"]`` — all applied live through
``StagedExecutor.resize`` / ``AdmissionController.resize`` with
results byte-identical to a fixed pool.

The first section shows the planner alone: it is a pure function from
forecast numbers to a diff, no deployment required. The second runs
the closed loop against a live service.

Run:  PYTHONPATH=src python examples/predictive_provisioning.py
"""

from repro import QuercService
from repro.backends import NullBackend
from repro.forecast import (
    AdmissionPlan,
    Blueprint,
    PredictiveProvisioner,
    ProvisioningPlanner,
)
from repro.workloads import QueryLogRecord, StreamBatch

THREAD_BUDGET = 8


def plan_on_paper() -> None:
    """The planner is a pure function: numbers in, blueprint diff out."""
    planner = ProvisioningPlanner(thread_budget=THREAD_BUDGET, headroom=1.25)
    current = Blueprint(
        label_workers=4,
        dispatch_workers=4,
        admission={"DB(X)": AdmissionPlan(max_in_flight=8, rate=100.0)},
    )
    diff = planner.plan(
        predicted_qps=400.0,  # the forecaster saw a ramp and extrapolated
        label_cost=0.002,  # stage A: cheap labeling
        dispatch_cost=0.010,  # stage B: the expensive side
        current=current,
        backend_weights={"DB(X)": 1.0},
        now=42.0,
    )
    print("— plan on paper —")
    print(
        f"  demand-driven split of {THREAD_BUDGET} threads: "
        f"{current.label_workers}+{current.dispatch_workers} -> "
        f"{diff.recommended.label_workers}+{diff.recommended.dispatch_workers}"
    )
    for change in diff.changes:
        print(
            f"  {change['kind']:<10} {change['target']:<6} "
            f"{change['field']:<14} {change['current']} -> "
            f"{change['recommended']}"
        )


def batch(app: str, step: int, n: int) -> StreamBatch:
    return StreamBatch(
        application=app,
        records=[
            QueryLogRecord(
                query=f"select c{i} from {app}_t where k = {step}",
                user="u",
                account="a",
                cluster="east",
                timestamp=float(step),
            )
            for i in range(n)
        ],
        time_step=step,
    )


def main() -> None:
    plan_on_paper()

    service = QuercService()
    service.register_backend(NullBackend("DB(X)"), max_in_flight=16, rate=500.0)
    service.register_backend(NullBackend("DB(Y)"))
    service.add_application("X", backend="DB(X)")
    service.add_application("Y", backend="DB(Y)")

    provisioner = service.set_provisioner(
        PredictiveProvisioner(
            planner=ProvisioningPlanner(thread_budget=THREAD_BUDGET),
            interval_seconds=0.01,  # plan eagerly for the demo
        )
    )

    # X ramps 4 -> 64 queries per step; Y stays at 8
    batches = []
    for step in range(16):
        batches.append(batch("X", step, min(64, 4 * (step + 1))))
        batches.append(batch("Y", step, 8))

    results = service.process_routed_concurrent(
        batches, label_workers=4, dispatch_workers=4
    )
    assert len(results) == len(batches)

    stats = service.stats()
    forecast = stats["forecast"]
    pool = stats["executor"]["pool"]
    print("— live loop —")
    print(
        f"  plans {forecast['plans']}, applied {forecast['applies']} "
        f"(errors {forecast['apply_errors']})"
    )
    for tenant, state in sorted(forecast["tenants"].items()):
        print(
            f"  tenant {tenant}: observed {state['total_observed']} queries, "
            f"level {state['level']:.0f} q/s, trend {state['trend']:+.1f}"
        )
    print(
        f"  pool now {pool['label_workers']}+{pool['dispatch_workers']} "
        f"of {THREAD_BUDGET} (resizes {pool['resizes']}, "
        f"retired {pool['workers_retired']})"
    )
    diff = forecast["last_diff"]
    if diff is not None:
        print(f"  last diff ({len(diff['changes'])} changes):")
        for change in diff["changes"]:
            print(
                f"    {change['kind']:<10} {change['target']:<6} "
                f"{change['field']:<14} {change['current']} -> "
                f"{change['recommended']}"
            )
    service.close()


if __name__ == "__main__":
    main()

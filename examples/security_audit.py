"""Security auditing: flag queries that don't look like their user (§5.2).

Trains the user labeler on historical logs, then injects a simulated
account compromise — an attacker issuing queries copied from a
*different* user's habit profile under a stolen identity — and checks
that the auditor flags them.

Run:  python examples/security_audit.py
"""

from repro.apps.security import SecurityAuditor
from repro.embedding import LSTMAutoencoderEmbedder
from repro.workloads import SnowSimConfig, generate_snowsim_workload
from repro.workloads.logs import QueryLogRecord


def main() -> None:
    records = generate_snowsim_workload(
        SnowSimConfig(
            # two exclusive-habit accounts: users are separable
            account_profile=((1200, 6), (900, 5)),
            shared_accounts=(),
            seed=5,
        )
    )
    train, rest = records[:1600], records[1600:]

    embedder = LSTMAutoencoderEmbedder(dimension=32, epochs=5, seed=2)
    embedder.fit([r.query for r in train])
    auditor = SecurityAuditor(embedder, n_trees=16, seed=0).fit(train)

    # normal traffic: how noisy is the alarm?
    normal_findings = auditor.audit(rest, min_confidence=0.6)
    print(
        f"normal traffic: {len(normal_findings)}/{len(rest)} queries flagged"
    )

    # simulated compromise: victim's identity, attacker's query habits
    by_user: dict[str, list[QueryLogRecord]] = {}
    for record in rest:
        by_user.setdefault(record.user, []).append(record)
    users = sorted(u for u, rs in by_user.items() if len(rs) >= 10)
    victim, attacker = users[0], users[-1]
    stolen = [
        QueryLogRecord(query=r.query, user=victim, account=r.account)
        for r in by_user[attacker][:10]
    ]
    compromise_findings = auditor.audit(stolen, min_confidence=0.3)
    print(
        f"compromised session ({attacker!r} issuing as {victim!r}): "
        f"{len(compromise_findings)}/{len(stolen)} queries flagged"
    )
    for finding in compromise_findings[:3]:
        print(
            f"  flagged (conf {finding.confidence:.2f}): "
            f"{finding.query[:70]}..."
        )


if __name__ == "__main__":
    main()

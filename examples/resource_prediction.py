"""Error prediction and resource allocation from syntax alone (§4).

The tech-report companion applications: label queries as
light/standard/long-running/memory-intensive before execution, and
predict which queries will fail, so they can be routed to sturdier
clusters speculatively.

Run:  python examples/resource_prediction.py
"""

from collections import Counter

from repro.apps.errorpred import ErrorPredictor
from repro.apps.resources import ResourceAllocator, resource_class
from repro.embedding import Doc2VecEmbedder
from repro.workloads import SnowSimConfig, generate_snowsim_workload


def main() -> None:
    records = generate_snowsim_workload(
        SnowSimConfig(total_queries=4000, seed=13, error_rate=0.12)
    )
    train, test = records[:3000], records[3000:]

    embedder = Doc2VecEmbedder(dimension=32, epochs=6, seed=0)
    embedder.fit([r.query for r in train])

    # -- resource allocation -------------------------------------------------
    allocator = ResourceAllocator(embedder, n_trees=16, seed=0).fit(train)
    accuracy = allocator.accuracy(test)
    truth = Counter(resource_class(r.runtime_seconds, r.memory_mb) for r in test)
    print(f"resource-class accuracy on holdout: {accuracy:.1%}")
    print(f"  class mix: {dict(truth)}")

    # -- error prediction -----------------------------------------------------
    # errors are rare, so the useful artifact is the risk *ranking*:
    # route the top-risk slice to the instrumented cluster
    predictor = ErrorPredictor(embedder, n_trees=16, seed=0).fit(train)
    scores = predictor.risk_scores([r.query for r in test])
    truly_erroring = [bool(r.error_code) for r in test]
    order = scores.argsort()[::-1]
    decile = len(test) // 10
    top_hits = sum(truly_erroring[i] for i in order[:decile])
    base_rate = sum(truly_erroring) / len(test)
    lift = (top_hits / decile) / base_rate if base_rate else 0.0
    print(
        f"top-risk decile captures {top_hits}/{sum(truly_erroring)} errors "
        f"(lift {lift:.1f}x over the {base_rate:.1%} base rate)"
    )
    for i in order[:3]:
        print(f"  risk {scores[i]:.2f}  {test[i].query[:60]}...")


if __name__ == "__main__":
    main()

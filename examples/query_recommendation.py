"""Next-query recommendation from session history (§4).

Builds per-user sessions from the SnowSim log, trains the
history-conditioned recommender, and suggests next queries for a
held-out session prefix.

Run:  python examples/query_recommendation.py
"""

from collections import defaultdict

from repro.apps.recommendation import QueryRecommender
from repro.embedding import Doc2VecEmbedder
from repro.workloads import SnowSimConfig, generate_snowsim_workload


def main() -> None:
    records = generate_snowsim_workload(
        SnowSimConfig(total_queries=2500, seed=21)
    )

    sessions: dict[str, list[str]] = defaultdict(list)
    for record in sorted(records, key=lambda r: r.timestamp):
        sessions[record.user].append(record.query)
    usable = [qs for qs in sessions.values() if len(qs) >= 8]
    print(f"{len(usable)} user sessions with >= 8 queries")

    train_sessions = [qs[:-4] for qs in usable]
    corpus = [q for qs in train_sessions for q in qs]

    embedder = Doc2VecEmbedder(dimension=32, epochs=6, seed=0)
    embedder.fit(corpus)
    recommender = QueryRecommender(embedder, history=3, n_neighbors=8)
    recommender.fit(train_sessions)

    # recommend against a held-out tail and check same-table hits
    hits = 0
    trials = 0
    for qs in usable[:20]:
        recent, actual_next = qs[-4:-1], qs[-1]
        suggestions = recommender.recommend(recent, top_k=3)
        trials += 1
        actual_table = actual_next.split(" FROM ")[-1].split()[0]
        if any(f" {actual_table} " in f" {s} " or actual_table in s
               for s in suggestions):
            hits += 1
    print(f"top-3 suggestions touch the next query's table: {hits}/{trials}")

    example = usable[0]
    print("\nhistory:")
    for q in example[-4:-1]:
        print(f"  {q[:72]}")
    print("suggestions:")
    for s in recommender.recommend(example[-4:-1], top_k=3):
        print(f"  -> {s[:72]}")


if __name__ == "__main__":
    main()

"""Network serving: real clients in front of the workload manager.

Everything before this example holds the service in process. Here the
same spine goes behind a TCP front door: a ``QuercServer`` serves two
tenants over loopback, an ``EdgeAdmission`` gate sheds overload before
it can touch a lane or a backend slot, and two kinds of client talk to
it — a sync ``QuercClient`` doing one round-trip at a time, and a
fleet of ``AsyncQuercClient`` sessions pipelining batches through
their per-session windows. The results that come back over the wire
are byte-for-byte what ``process_routed`` returns in process.

Run:  PYTHONPATH=src python examples/network_serving.py
"""

import asyncio
import time

from repro import MiniDBBackend, QuercService
from repro.apps.routing import RoutingPolicyAuditor
from repro.backends import LatencyProxyBackend
from repro.embedding import BagOfTokensEmbedder
from repro.errors import ServerReplyError
from repro.minidb import materialize_log_tables
from repro.server import (
    AsyncQuercClient,
    EdgeAdmission,
    QuercClient,
    QuercServer,
    ServerThread,
)
from repro.workloads import SnowSimConfig, generate_snowsim_workload


def build_service() -> QuercService:
    snow = generate_snowsim_workload(SnowSimConfig(total_queries=900, seed=9))
    train, serve = snow[:600], [r.query for r in snow[600:]]

    database = materialize_log_tables(serve, rows_per_table=16)
    embedder = BagOfTokensEmbedder(dimension=64).fit([r.query for r in train])
    auditor = RoutingPolicyAuditor(embedder, n_trees=16, seed=0).fit(train)

    service = QuercService()
    for name in ("DB(X)", "DB(Y)"):
        # a remote database: every execute pays a simulated round-trip
        service.register_backend(
            LatencyProxyBackend(
                MiniDBBackend(name, database),
                per_batch_seconds=0.004,
                per_query_seconds=0.001,
            )
        )
    service.add_application("X", backend="DB(X)")
    service.add_application("Y", backend="DB(Y)")
    service.attach_classifier("X", auditor.to_classifier("cluster"))
    service.attach_classifier("Y", auditor.to_classifier("cluster"))
    return service, serve


async def async_fleet(address, serve, n_sessions=8, batches_each=6):
    """n pipelined sessions, alternating tenants, all concurrent."""

    async def session(s: int) -> int:
        app = "X" if s % 2 == 0 else "Y"
        async with AsyncQuercClient(*address, application=app) as client:
            futures = []
            for b in range(batches_each):
                offset = (s * 60 + b * 10) % (len(serve) - 10)
                futures.append(
                    await client.submit_future(serve[offset:offset + 10])
                )
            labeled = 0
            for f in futures:
                labeled += len((await f).labeled)
            return labeled

    counts = await asyncio.gather(*(session(s) for s in range(n_sessions)))
    return sum(counts)


def main() -> None:
    service, serve = build_service()

    # the front door: at most 8 sessions, 512 queries in flight, and a
    # rate ceiling — anything beyond is shed with SERVER_BUSY *before*
    # it consumes a lane or a backend slot
    server = QuercServer(
        service,
        edge=EdgeAdmission(
            max_sessions=8,
            max_in_flight_queries=512,
            queries_per_second=5000,
        ),
        label_workers=2,
        dispatch_workers=4,
    )

    with ServerThread(server) as st:
        host, port = st.address
        print(f"serving on {host}:{port}")

        # --- one sync client, one round-trip at a time ---------------
        with QuercClient(host, port, application="X") as client:
            result = client.run_batch(serve[:8])
            clusters = sorted({row["cluster"] for row in result.labels})
            print(f"sync client: {len(result.labeled)} labeled, "
                  f"clusters {clusters}, "
                  f"report admitted={result.report['admitted']}")

            # a frame bigger than the whole in-flight gate bounces off
            # the edge, harmlessly — nothing downstream ever sees it
            try:
                client.run_batch(serve + serve)  # way over the 512 gate
            except ServerReplyError as exc:
                print(f"oversized frame shed at the edge: {exc.code}")

        # --- a pipelined async fleet ---------------------------------
        start = time.perf_counter()
        n = asyncio.run(async_fleet(st.address, serve))
        wall = time.perf_counter() - start
        print(f"async fleet: {n} queries over 8 sessions in {wall:.2f}s "
              f"({n / wall:.0f} q/s)")

        stats = service.stats()["server"]
        print(
            f"server: {stats['sessions']} sessions, "
            f"{stats['frames_in']} frames in / {stats['frames_out']} out, "
            f"{stats['queries']} queries, "
            f"{stats['frames_shed']} frame(s) shed "
            f"({stats['queries_shed']} queries)"
        )
    service.close()


if __name__ == "__main__":
    main()
